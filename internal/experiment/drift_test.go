package experiment

import (
	"encoding/json"
	"testing"
)

// TestRunDriftGatesPassAtDefaults is the drift detector's end-to-end
// acceptance run: at the default sensitivity the detector must hit the
// precision/recall gates against the fault plane's ground-truth schedule
// and stay silent on the churn-only cell.
func TestRunDriftGatesPassAtDefaults(t *testing.T) {
	out, err := RunDrift(DefaultDriftParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range out.Gates {
		if !g.Pass {
			t.Errorf("gate %s FAIL: %s", g.Name, g.Detail)
		}
	}
	if !out.AllPass {
		t.Fatalf("drift gates failed:\n%s", RenderDrift(out))
	}
	if len(out.Cells) != 4*len(DefaultDriftParams().Sensitivities) {
		t.Fatalf("got %d cells, want scenarios x sensitivities", len(out.Cells))
	}
	truthTotal := 0
	for _, sched := range out.Truth {
		truthTotal += len(sched.Events)
	}
	if truthTotal == 0 {
		t.Fatal("no truth events compiled; the gates above were vacuous")
	}
	// The sweep must show the sensitivity tradeoff: at least one cell away
	// from the default sensitivity misses events or false-alarms, otherwise
	// the sweep axis is dead.
	sawTradeoff := false
	for _, c := range out.Cells {
		if c.Sensitivity != DefaultDriftParams().DefaultSensitivity &&
			(c.Missed > 0 || c.FalseAlarms > 0) {
			sawTradeoff = true
		}
	}
	if !sawTradeoff {
		t.Error("every off-default sensitivity cell is perfect; sweep shows no tradeoff")
	}
}

// TestRunDriftDeterministicRerun pins the report's byte-level determinism:
// the same seed must reproduce the identical outcome, detections and all.
// CI re-runs the drift bench and compares the report files with cmp; this
// is the in-process version of that gate.
func TestRunDriftDeterministicRerun(t *testing.T) {
	run := func() []byte {
		out, err := RunDrift(DefaultDriftParams())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := run(), run()
	if string(b1) != string(b2) {
		t.Fatalf("same-seed reruns differ:\n%s\n%s", b1, b2)
	}
}
