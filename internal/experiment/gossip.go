package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/crp"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/peering"
)

// The gossip experiment asks the distributed-systems question the
// single-daemon experiments cannot: when N crpd daemons each ingest a
// disjoint slice of the probe stream and replicate through the peering
// plane, do they converge to the *same* store — and to the store a single
// daemon fed the merged stream would hold? The harness is fully
// deterministic: an in-memory mesh instead of UDP sockets, a virtual clock
// instead of wall time, seeded RNGs everywhere, and a single-threaded pump
// that delivers packets in a fixed order. The fault plane wraps every mesh
// conn, so packet loss/dup/reorder scenarios replay bit-identically too.

// GossipConfig parameterizes one multi-daemon convergence run.
type GossipConfig struct {
	// Daemons is the mesh size (full mesh membership). Default 3.
	Daemons int
	// NodesPerDaemon is how many distinct nodes each daemon observes; the
	// streams are disjoint, so total state is Daemons*NodesPerDaemon nodes.
	// Default 40.
	NodesPerDaemon int
	// ProbesPerNode is the per-node probe count in each stream. Default 8.
	ProbesPerNode int
	// Replicas is the replica-ID pool size probes draw from. Default 12.
	Replicas int
	// Fanout / TTL shape rumor mongering (peering.Config semantics).
	// Defaults 2 / 3.
	Fanout int
	TTL    int
	// MaxRounds bounds each convergence phase (initial spread, and again
	// for forget propagation). Default 50.
	MaxRounds int
	// Window / Shards shape every daemon's store identically (digest
	// comparison requires equal widths). Defaults 10 / 64.
	Window int
	Shards int
	// Seed drives stream generation and each engine's fanout RNG.
	Seed uint64
	// Codec selects the wire codec for every engine: "" or "binary"
	// negotiates the compact binary codec, "json" pins every engine to the
	// JSON fallback, and "mixed" pins engine 0 to JSON while the rest
	// negotiate binary — the rolling-upgrade topology.
	Codec string
	// Faults is applied to every gossip conn under the label "gossip".
	// Leave empty for a clean run.
	Faults faults.Scenario
	// Registry receives every engine's peering.* counters (shared across
	// the mesh, so tests can pin process-level observability). Default: a
	// fresh private registry.
	Registry *obs.Registry
}

func (c *GossipConfig) setDefaults() {
	if c.Daemons == 0 {
		c.Daemons = 3
	}
	if c.NodesPerDaemon == 0 {
		c.NodesPerDaemon = 40
	}
	if c.ProbesPerNode == 0 {
		c.ProbesPerNode = 8
	}
	if c.Replicas == 0 {
		c.Replicas = 12
	}
	if c.Fanout == 0 {
		c.Fanout = 2
	}
	if c.TTL == 0 {
		c.TTL = 3
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 50
	}
	if c.Window == 0 {
		c.Window = 10
	}
	if c.Shards == 0 {
		c.Shards = 64
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
}

// GossipOutcome is the result of one convergence run. Every field is a
// deterministic function of the config, so marshaled outcomes are
// byte-identical across reruns — the bench's determinism gate depends on it.
type GossipOutcome struct {
	Daemons int `json:"daemons"`
	Nodes   int `json:"nodes"`
	// Converged reports whether all stores reached identical shard digests
	// within MaxRounds; RoundsToConverge is the round it happened (0 when
	// it never did).
	Converged        bool `json:"converged"`
	RoundsToConverge int  `json:"roundsToConverge"`
	// SnapshotMatch reports whether every daemon's compiled snapshot is
	// byte-identical to a single daemon fed the merged stream;
	// SnapshotBytes is that snapshot's size.
	SnapshotMatch bool `json:"snapshotMatch"`
	SnapshotBytes int  `json:"snapshotBytes"`
	// ForgetPropagated reports whether a Forget issued on one daemon
	// disappeared from every store; ForgetRounds is how long that took.
	ForgetPropagated bool `json:"forgetPropagated"`
	ForgetRounds     int  `json:"forgetRounds"`
	// Stats are the per-daemon engine counters at quiescence.
	Stats []peering.StatsSnapshot `json:"stats"`
	// Activations counts, per fault kind, how often the plane fired. A
	// test asserting a fault's effect must first assert it activated.
	Activations map[faults.Kind]uint64 `json:"activations,omitempty"`
}

// GossipEnvelope declares what a gossip run must achieve. Zero-valued
// fields are not checked.
type GossipEnvelope struct {
	// MaxRounds bounds RoundsToConverge (and ForgetRounds).
	MaxRounds int
}

// Check asserts the outcome converged, replicated faithfully and stayed
// within the envelope.
func (o *GossipOutcome) Check(env GossipEnvelope) error {
	if !o.Converged {
		return errors.New("experiment: gossip mesh did not converge")
	}
	if !o.SnapshotMatch {
		return errors.New("experiment: converged stores differ from the merged-stream store")
	}
	if !o.ForgetPropagated {
		return errors.New("experiment: forget did not propagate mesh-wide")
	}
	if env.MaxRounds > 0 {
		if o.RoundsToConverge > env.MaxRounds {
			return fmt.Errorf("experiment: convergence took %d rounds, beyond %d", o.RoundsToConverge, env.MaxRounds)
		}
		if o.ForgetRounds > env.MaxRounds {
			return fmt.Errorf("experiment: forget propagation took %d rounds, beyond %d", o.ForgetRounds, env.MaxRounds)
		}
	}
	return nil
}

// gossipMesh is the assembled deterministic mesh: engines, their
// fault-wrapped conns, and the virtual clock.
type gossipMesh struct {
	mesh    *peering.MemMesh
	svcs    []*crp.Service
	engines []*peering.Peering
	conns   []net.PacketConn
	now     time.Time
	buf     []byte
}

// RunGossip builds a full mesh of cfg.Daemons daemons over an in-memory
// packet substrate, feeds each a disjoint probe stream, pumps gossip rounds
// until the stores converge, compares the result against a single daemon
// fed the merged stream, then verifies a Forget issued on the last daemon
// disappears mesh-wide.
func RunGossip(cfg GossipConfig) (*GossipOutcome, error) {
	cfg.setDefaults()
	if cfg.Daemons < 2 {
		return nil, fmt.Errorf("experiment: gossip needs >= 2 daemons, got %d", cfg.Daemons)
	}

	var plane *faults.Plane
	if len(cfg.Faults.Faults) > 0 {
		var err error
		// The gossip links are pure packet paths; no topology needed.
		plane, err = faults.New(nil, cfg.Faults)
		if err != nil {
			return nil, err
		}
	}

	gm := &gossipMesh{
		mesh: peering.NewMemMesh(),
		now:  time.Unix(1_800_000_000, 0),
		// One byte beyond the bound, mirroring the real read loop: a
		// maximum-size datagram must not be confused with a truncated
		// larger one.
		buf: make([]byte, peering.MaxMsgSize+1),
	}
	clock := func() time.Time { return gm.now }

	for i := 0; i < cfg.Daemons; i++ {
		addr := fmt.Sprintf("mem-d%02d", i)
		var pc net.PacketConn = gm.mesh.Conn(addr)
		if plane != nil {
			pc = plane.WrapPacketConn(pc, "gossip")
		}
		codec := ""
		switch cfg.Codec {
		case "", "binary":
		case "json":
			codec = "json"
		case "mixed":
			if i == 0 {
				codec = "json"
			}
		default:
			return nil, fmt.Errorf("experiment: unknown gossip codec %q", cfg.Codec)
		}
		svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: cfg.Shards}, crp.WithWindow(cfg.Window))
		eng, err := peering.New(peering.Config{
			Self:     fmt.Sprintf("daemon-%02d", i),
			Addr:     addr,
			Service:  svc,
			Fanout:   cfg.Fanout,
			TTL:      cfg.TTL,
			Seed:     cfg.Seed + uint64(i)*7919,
			Now:      clock,
			Resolve:  gm.mesh.Resolve,
			Registry: cfg.Registry,
			Codec:    codec,
		})
		if err != nil {
			return nil, err
		}
		eng.Attach(pc)
		gm.svcs = append(gm.svcs, svc)
		gm.engines = append(gm.engines, eng)
		gm.conns = append(gm.conns, pc)
	}
	for i, eng := range gm.engines {
		for j := 0; j < cfg.Daemons; j++ {
			if j == i {
				continue
			}
			if err := eng.AddPeer(fmt.Sprintf("daemon-%02d", j), fmt.Sprintf("mem-d%02d", j)); err != nil {
				return nil, err
			}
		}
	}

	// Disjoint streams, plus the merged-stream reference daemon. The same
	// (node, at, replicas) tuples go to both sides, so a faithful
	// replication converges to the reference's exact probe windows.
	merged := crp.NewServiceWithStore(crp.StoreConfig{Shards: cfg.Shards}, crp.WithWindow(cfg.Window))
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	for i := 0; i < cfg.Daemons; i++ {
		for j := 0; j < cfg.NodesPerDaemon; j++ {
			node := crp.NodeID(fmt.Sprintf("d%02d-n%03d", i, j))
			for k := 0; k < cfg.ProbesPerNode; k++ {
				at := gm.now.Add(time.Duration(k) * time.Minute)
				replicas := make([]crp.ReplicaID, 0, 3)
				for r := 0; r < 3; r++ {
					replicas = append(replicas, crp.ReplicaID(fmt.Sprintf("r%02d", rng.Intn(cfg.Replicas))))
				}
				if err := gm.svcs[i].Observe(node, at, replicas...); err != nil {
					return nil, err
				}
				if err := merged.Observe(node, at, replicas...); err != nil {
					return nil, err
				}
			}
		}
	}
	gm.now = gm.now.Add(time.Duration(cfg.ProbesPerNode)*time.Minute + time.Minute)

	out := &GossipOutcome{
		Daemons: cfg.Daemons,
		Nodes:   cfg.Daemons * cfg.NodesPerDaemon,
	}

	// Phase 1: converge the disjoint streams.
	for round := 1; round <= cfg.MaxRounds; round++ {
		gm.step()
		if gm.converged() {
			out.Converged = true
			out.RoundsToConverge = round
			break
		}
	}

	// Byte-identical replication check against the merged-stream daemon.
	if out.Converged {
		var ref bytes.Buffer
		if err := merged.WriteSnapshot(&ref); err != nil {
			return nil, err
		}
		out.SnapshotBytes = ref.Len()
		out.SnapshotMatch = true
		for _, svc := range gm.svcs {
			var got bytes.Buffer
			if err := svc.WriteSnapshot(&got); err != nil {
				return nil, err
			}
			if !bytes.Equal(ref.Bytes(), got.Bytes()) {
				out.SnapshotMatch = false
				break
			}
		}
	}

	// Phase 2: a Forget issued on the *last* daemon (never the origin of
	// daemon-00's nodes) must disappear from every store.
	if out.Converged {
		victim := crp.NodeID("d00-n000")
		gm.svcs[cfg.Daemons-1].Forget(victim)
		for round := 1; round <= cfg.MaxRounds; round++ {
			gm.step()
			if gm.converged() && gm.forgotten(victim) {
				out.ForgetPropagated = true
				out.ForgetRounds = round
				break
			}
		}
	}

	for _, eng := range gm.engines {
		out.Stats = append(out.Stats, eng.Stats())
	}
	if plane != nil {
		out.Activations = plane.Activations()
	}
	return out, nil
}

// step advances the virtual clock one second, ticks every engine in index
// order, then pumps the mesh until a full pass delivers nothing. Reply
// cascades (digest -> diff -> push/pull -> delta) settle within the pump;
// re-enqueued rumors wait for the next round's ticks, so each step
// terminates.
func (gm *gossipMesh) step() {
	gm.now = gm.now.Add(time.Second)
	for _, eng := range gm.engines {
		eng.Tick(gm.now)
	}
	for progress := true; progress; {
		progress = false
		for i, pc := range gm.conns {
			for {
				n, from, err := pc.ReadFrom(gm.buf)
				if err != nil {
					break // queue drained (or every queued packet lost)
				}
				gm.engines[i].HandleDatagram(gm.buf[:n], from)
				progress = true
			}
		}
	}
}

// converged reports whether every store's shard digests match daemon 0's.
// The digest covers node, origin, version and deletion state, so equality
// means identical replicated metadata (and, via wholesale window
// replacement on apply, identical probe windows).
func (gm *gossipMesh) converged() bool {
	ref := gm.svcs[0].ShardDigests()
	for _, svc := range gm.svcs[1:] {
		got := svc.ShardDigests()
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
	}
	return true
}

// forgotten reports whether no store can resolve the node any more.
func (gm *gossipMesh) forgotten(node crp.NodeID) bool {
	for _, svc := range gm.svcs {
		if _, err := svc.RatioMap(node); err == nil {
			return false
		}
	}
	return true
}
