package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/crp"
)

// Bootstrap study: §VI derives CRP's cold-start time from Fig. 9 — with a
// 10-minute probe interval and a 10-probe window, a client can make
// effective decisions ~100 minutes after it first appears. This experiment
// measures it directly: the average Top-1 rank as a function of the number
// of probes a fresh client has collected.

// BootstrapPoint is one point on the bootstrap curve.
type BootstrapPoint struct {
	Probes int
	// MeanRank is the average Top-1 rank over clients that have signal.
	MeanRank float64
	// MedianRank is the median over the same clients.
	MedianRank float64
	// FracWithSignal is the fraction of clients with any candidate overlap.
	FracWithSignal float64
}

// BootstrapConfig parameterizes the bootstrap study.
type BootstrapConfig struct {
	// ProbeCounts are the history lengths to evaluate (default 1..30 in
	// steps matching the paper's window sizes).
	ProbeCounts []int
	// Interval is the probe interval (default 10 minutes, as in Fig. 9).
	Interval time.Duration
	// CandidateSchedule drives candidate map collection; defaults to the
	// same interval over the longest client history.
	CandidateSchedule ProbeSchedule
}

// RunBootstrap evaluates closest-node quality as a fresh client accumulates
// its first probes.
func (s *Scenario) RunBootstrap(cfg BootstrapConfig) ([]BootstrapPoint, error) {
	if len(cfg.ProbeCounts) == 0 {
		cfg.ProbeCounts = []int{1, 2, 3, 5, 10, 20, 30}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Minute
	}
	maxProbes := 0
	for _, n := range cfg.ProbeCounts {
		if n <= 0 {
			return nil, fmt.Errorf("experiment: non-positive probe count %d", n)
		}
		if n > maxProbes {
			maxProbes = n
		}
	}
	if cfg.CandidateSchedule.Interval == 0 {
		cfg.CandidateSchedule = ProbeSchedule{Interval: cfg.Interval, Probes: maxProbes}
	}
	candMaps, err := s.candidateMaps(cfg.CandidateSchedule)
	if err != nil {
		return nil, err
	}

	sched := ProbeSchedule{Interval: cfg.Interval, Probes: maxProbes}
	evalAt := sched.End() + time.Minute

	type agg struct {
		ranks  []float64
		signal int
	}
	aggs := make([]agg, len(cfg.ProbeCounts))

	for _, client := range s.Clients {
		h, err := s.collectHistory(client, sched)
		if err != nil {
			return nil, err
		}
		// True candidate order once per client.
		ranks := s.newRankContext(client, RankSweepConfig{
			Duration:       evalAt,
			DecisionPoints: 1,
		})
		for pi, probes := range cfg.ProbeCounts {
			// The client's map after its first `probes` probe steps. Each
			// step issues one lookup per CDN name.
			cutoff := time.Duration(probes-1) * cfg.Interval
			m := h.mapUpTo(cutoff, 0)
			if len(m) == 0 {
				continue
			}
			best, ok := crp.SelectClosest(m, candMaps)
			if !ok {
				continue
			}
			id, found := s.HostOf(best.Node)
			if !found {
				continue
			}
			aggs[pi].signal++
			aggs[pi].ranks = append(aggs[pi].ranks, float64(ranks.rankAt[0][id]))
		}
	}

	out := make([]BootstrapPoint, len(cfg.ProbeCounts))
	for i, probes := range cfg.ProbeCounts {
		p := BootstrapPoint{Probes: probes}
		if n := len(aggs[i].ranks); n > 0 {
			sum := 0.0
			for _, r := range aggs[i].ranks {
				sum += r
			}
			p.MeanRank = sum / float64(n)
			sorted := append([]float64(nil), aggs[i].ranks...)
			sort.Float64s(sorted)
			p.MedianRank = sorted[n/2]
		}
		p.FracWithSignal = float64(aggs[i].signal) / float64(len(s.Clients))
		out[i] = p
	}
	return out, nil
}

// RenderBootstrap prints the bootstrap curve.
func RenderBootstrap(points []BootstrapPoint, interval time.Duration) string {
	var sb strings.Builder
	sb.WriteString("§VI — bootstrap: selection quality vs probes collected\n")
	fmt.Fprintf(&sb, "%8s %12s %10s %12s %12s\n",
		"probes", "wall time", "signal", "mean rank", "median rank")
	for _, p := range points {
		fmt.Fprintf(&sb, "%8d %12s %9.0f%% %12.1f %12.1f\n",
			p.Probes, time.Duration(p.Probes)*interval, 100*p.FracWithSignal,
			p.MeanRank, p.MedianRank)
	}
	return sb.String()
}
