package experiment

import (
	"sync"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/netsim"
)

// Short aliases keep the test bodies readable.
type (
	netsimHostID = netsim.HostID
	ratioMap     = crp.RatioMap
	replicaID    = crp.ReplicaID
)

var cosine = crp.CosineSimilarity

// The experiment tests run a reduced-scale scenario (shared across tests)
// and assert the *shape* of the paper's results rather than absolute
// numbers.

var (
	scenarioOnce sync.Once
	sharedSc     *Scenario
	scenarioErr  error
)

func testScenario(t *testing.T) *Scenario {
	t.Helper()
	scenarioOnce.Do(func() {
		// Candidate and replica densities are kept close to the paper's
		// (240 candidates, dense CDN): CRP's Top-K averaging needs several
		// candidates per metro to be meaningful, exactly as on PlanetLab.
		sharedSc, scenarioErr = NewScenario(ScenarioParams{
			Seed:             1,
			NumClients:       150,
			NumCandidates:    240,
			NumReplicas:      500,
			MeridianFailures: true,
		})
	})
	if scenarioErr != nil {
		t.Fatalf("NewScenario: %v", scenarioErr)
	}
	return sharedSc
}

func shortSchedule() ProbeSchedule {
	return ProbeSchedule{Interval: 10 * time.Minute, Probes: 36}
}

func TestNewScenarioDefaultsAndErrors(t *testing.T) {
	s := testScenario(t)
	if len(s.Clients) != 150 || len(s.Candidates) != 240 {
		t.Errorf("scenario sizes: %d clients, %d candidates", len(s.Clients), len(s.Candidates))
	}
	if s.CDN == nil || s.Meridian == nil {
		t.Fatal("scenario missing subsystems")
	}
	// Node/host round trip.
	id := s.Clients[0]
	node := s.NodeID(id)
	back, ok := s.HostOf(node)
	if !ok || back != id {
		t.Errorf("HostOf(NodeID(%d)) = %d,%v", id, back, ok)
	}
}

func TestProbeScheduleValidate(t *testing.T) {
	if err := (ProbeSchedule{Interval: 0, Probes: 5}).Validate(); err == nil {
		t.Error("zero interval should fail")
	}
	if err := (ProbeSchedule{Interval: time.Minute, Probes: 0}).Validate(); err == nil {
		t.Error("zero probes should fail")
	}
	ps := ProbeSchedule{Start: time.Hour, Interval: 10 * time.Minute, Probes: 7}
	if got, want := ps.End(), time.Hour+time.Minute*60; got != want {
		t.Errorf("End = %v, want %v", got, want)
	}
}

func TestCollectTrackerProducesNormalizedMaps(t *testing.T) {
	s := testScenario(t)
	tr, err := s.CollectTracker(s.Clients[0], shortSchedule())
	if err != nil {
		t.Fatal(err)
	}
	m := tr.RatioMap()
	if len(m) == 0 {
		t.Fatal("empty ratio map")
	}
	if sum := m.Sum(); sum < 0.999 || sum > 1.001 {
		t.Errorf("ratio sum = %v", sum)
	}
	// The paper observes hosts see a small set of frequent replicas.
	if len(m) > 25 {
		t.Errorf("client saw %d replicas, expected a small set", len(m))
	}
	// Window option limits probes (each probe step resolves two names).
	ps := shortSchedule()
	ps.Window = 5
	trw, err := s.CollectTracker(s.Clients[0], ps)
	if err != nil {
		t.Fatal(err)
	}
	if got := trw.Len(); got != 5*len(s.CDN.Names()) {
		t.Errorf("windowed tracker holds %d lookups, want %d", got, 5*len(s.CDN.Names()))
	}
}

func TestNearbyClientsHaveHigherSimilarity(t *testing.T) {
	// The core CRP hypothesis, end to end through the scenario plumbing.
	s := testScenario(t)
	maps, err := s.CollectRatioMaps(s.Clients[:60], shortSchedule())
	if err != nil {
		t.Fatal(err)
	}
	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			a, b := s.Clients[i], s.Clients[j]
			ha, hb := s.Topo.Host(a), s.Topo.Host(b)
			sim := simOf(maps, a, b, s)
			switch {
			case ha.Metro == hb.Metro:
				sameSum += sim
				sameN++
			case ha.Region != hb.Region:
				crossSum += sim
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Fatal("degenerate sample")
	}
	if sameSum/float64(sameN) <= 2*crossSum/float64(crossN) {
		t.Errorf("same-metro similarity %.3f not well above cross-region %.3f",
			sameSum/float64(sameN), crossSum/float64(crossN))
	}
}

func simOf(maps map[netsimHostID]ratioMap, a, b netsimHostID, s *Scenario) float64 {
	return cosine(maps[a], maps[b])
}

func TestRunClosestNodeShape(t *testing.T) {
	s := testScenario(t)
	outcome, err := s.RunClosestNode(ClosestNodeConfig{Schedule: shortSchedule()})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Results) != len(s.Clients) {
		t.Fatalf("results for %d clients, want %d", len(outcome.Results), len(s.Clients))
	}
	st := outcome.Stats()

	// Optimal is the floor for every system.
	for _, r := range outcome.Results {
		if r.CRPTop1 < r.Optimal-1e-9 || r.Meridian < r.Optimal-1e-9 {
			t.Fatalf("selected latency below optimal for client %d: %+v", r.Client, r)
		}
		if r.CRPTop1Rank < 0 || r.CRPTop1Rank >= len(s.Candidates) {
			t.Fatalf("bad rank %d", r.CRPTop1Rank)
		}
	}

	// Paper shape: CRP TopK is comparable to Meridian — its mean within a
	// modest factor, beating Meridian for a substantial minority of clients.
	if st.MeanCRPTopK > 2*st.MeanMeridian {
		t.Errorf("CRP topK mean %.1f ms not comparable to Meridian %.1f ms",
			st.MeanCRPTopK, st.MeanMeridian)
	}
	if st.FracCRPBeatsMeridian < 0.10 {
		t.Errorf("CRP beats Meridian only %.0f%% of the time; paper reports >25%%",
			100*st.FracCRPBeatsMeridian)
	}
	if st.FracTopKNearMeridian < 0.4 {
		t.Errorf("CRP TopK within 7 ms of Meridian only %.0f%% of the time; paper reports ~65%%",
			100*st.FracTopKNearMeridian)
	}
	// Both systems must be far better than chance: compare to the
	// population's mean optimal as a sanity anchor.
	if st.MeanCRPTop1 < st.MeanOptimal {
		t.Error("impossible: mean CRP Top1 below optimal")
	}
	if st.FracNoSignal > 0.2 {
		t.Errorf("%.0f%% of clients had no CRP signal; CDN coverage too sparse", 100*st.FracNoSignal)
	}
	// Top-1 of TopK is at most the TopK average only when K candidates are
	// worse; just check TopK doesn't wildly exceed Top1.
	if st.MeanCRPTopK > 3*st.MeanCRPTop1+20 {
		t.Errorf("TopK average %.1f inconsistent with Top1 %.1f", st.MeanCRPTopK, st.MeanCRPTop1)
	}
}

func TestRunClosestNodeDeterministic(t *testing.T) {
	s := testScenario(t)
	cfg := ClosestNodeConfig{Schedule: ProbeSchedule{Interval: 10 * time.Minute, Probes: 12}}
	a, err := s.RunClosestNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunClosestNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs across identical runs", i)
		}
	}
}

func TestRunClusteringShape(t *testing.T) {
	s := testScenario(t)
	outcome, err := s.RunClustering(ClusteringConfig{
		NumNodes:   100,
		Schedule:   shortSchedule(),
		SecondPass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.CRPRows) != 3 {
		t.Fatalf("CRP rows = %d, want 3 thresholds", len(outcome.CRPRows))
	}
	focus := outcome.CRPRows[outcome.Focus]
	if focus.Label != "CRP (t=0.1)" {
		t.Errorf("focus row = %q", focus.Label)
	}

	// Table I shape: lower thresholds cluster at least as many nodes.
	if outcome.CRPRows[0].Summary.NodesClustered < outcome.CRPRows[2].Summary.NodesClustered {
		t.Errorf("t=0.01 clustered %d < t=0.5 clustered %d",
			outcome.CRPRows[0].Summary.NodesClustered, outcome.CRPRows[2].Summary.NodesClustered)
	}
	// CRP clusters far more nodes than ASN (paper: >3x).
	if focus.Summary.NodesClustered < outcome.ASN.Summary.NodesClustered {
		t.Errorf("CRP clustered %d nodes, ASN %d; CRP should cluster more",
			focus.Summary.NodesClustered, outcome.ASN.Summary.NodesClustered)
	}
	// Fig. 7 shape: CRP finds at least as many good clusters in both
	// buckets, and strictly more in total.
	crpGood := focus.GoodBuckets[0] + focus.GoodBuckets[1]
	asnGood := outcome.ASN.GoodBuckets[0] + outcome.ASN.GoodBuckets[1]
	if crpGood <= asnGood {
		t.Errorf("CRP good clusters %d not above ASN %d", crpGood, asnGood)
	}
	// Fig. 6 shape: most evaluated CRP clusters are good.
	if focus.GoodFraction() < 0.5 {
		t.Errorf("only %.0f%% of CRP clusters are good", 100*focus.GoodFraction())
	}
}

func TestRunClusteringWithKingGroundTruth(t *testing.T) {
	s := testScenario(t)
	outcome, err := s.RunClustering(ClusteringConfig{
		NumNodes: 40,
		Schedule: ProbeSchedule{Interval: 10 * time.Minute, Probes: 18},
		UseKing:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// King noise shouldn't destroy the qualitative result.
	focus := outcome.CRPRows[outcome.Focus]
	if focus.Summary.NodesClustered == 0 {
		t.Error("no nodes clustered under King ground truth")
	}
}

func TestRunClusteringValidation(t *testing.T) {
	s := testScenario(t)
	if _, err := s.RunClustering(ClusteringConfig{NumNodes: 10_000}); err == nil {
		t.Error("requesting more nodes than clients should fail")
	}
}

func TestRunProbeIntervalSweepShape(t *testing.T) {
	s := testScenario(t)
	intervals := []time.Duration{20 * time.Minute, 100 * time.Minute, 500 * time.Minute, 2000 * time.Minute}
	series, err := s.RunProbeIntervalSweep(intervals, RankSweepConfig{
		Duration:          3 * 24 * time.Hour,
		CandidateInterval: 20 * time.Minute,
		DecisionPoints:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	// Fig. 8 shape: 20-minute and 100-minute probing perform comparably;
	// 2000-minute probing is clearly worse and covers fewer clients.
	if series[0].Mean() > series[1].Mean()*1.5+3 {
		t.Errorf("20-min rank %.1f much worse than 100-min %.1f", series[0].Mean(), series[1].Mean())
	}
	if series[3].Mean() < series[0].Mean() {
		t.Errorf("2000-min mean rank %.1f better than 20-min %.1f; staleness should hurt",
			series[3].Mean(), series[0].Mean())
	}
	if series[3].ClientsWithSignal > series[0].ClientsWithSignal {
		t.Errorf("2000-min covers %d clients > 20-min %d",
			series[3].ClientsWithSignal, series[0].ClientsWithSignal)
	}
	for _, sr := range series {
		if sr.ClientsWithSignal == 0 {
			t.Errorf("series %q has no clients with signal", sr.Label)
		}
	}
}

func TestRunWindowSweepShape(t *testing.T) {
	s := testScenario(t)
	series, err := s.RunWindowSweep([]int{0, 30, 10, 5}, 10*time.Minute, RankSweepConfig{
		Duration:          2 * 24 * time.Hour,
		CandidateInterval: 20 * time.Minute,
		DecisionPoints:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	means := map[string]float64{}
	for _, sr := range series {
		means[sr.Label] = sr.Mean()
	}
	// Fig. 9 shape: a 10-probe window is sufficient — close to the 30-probe
	// window — while 5 probes is noticeably coarser or equal.
	if means["Top1 10 probes"] > means["Top1 30 probes"]*2+3 {
		t.Errorf("10-probe rank %.1f much worse than 30-probe %.1f",
			means["Top1 10 probes"], means["Top1 30 probes"])
	}
	if means["Top1 5 probes"]+1e-9 < means["Top1 10 probes"]*0.5 {
		t.Errorf("5-probe rank %.1f implausibly better than 10-probe %.1f",
			means["Top1 5 probes"], means["Top1 10 probes"])
	}
}

func TestRunSweepValidation(t *testing.T) {
	s := testScenario(t)
	if _, err := s.RunProbeIntervalSweep(nil, RankSweepConfig{}); err == nil {
		t.Error("empty intervals should fail")
	}
	if _, err := s.RunWindowSweep(nil, time.Minute, RankSweepConfig{}); err == nil {
		t.Error("empty windows should fail")
	}
}

func TestLookupHistoryMapUpTo(t *testing.T) {
	h := lookupHistory{
		times: []time.Duration{0, time.Minute, 2 * time.Minute, 3 * time.Minute},
		sets: [][]replicaID{
			{"a"}, {"b"}, {"c"}, {"d"},
		},
	}
	m := h.mapUpTo(2*time.Minute, 0)
	if len(m) != 3 {
		t.Errorf("all-window map at t=2m has %d entries, want 3", len(m))
	}
	m = h.mapUpTo(2*time.Minute, 2)
	if len(m) != 2 {
		t.Errorf("window-2 map has %d entries, want 2", len(m))
	}
	if _, ok := m["b"]; !ok {
		t.Error("window should keep the 2 most recent lookups (b, c)")
	}
	if _, ok := m["a"]; ok {
		t.Error("window kept a stale lookup")
	}
	if got := h.mapUpTo(-time.Second, 0); len(got) != 0 {
		t.Errorf("map before first probe = %v", got)
	}
}
