package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// smallDegradation returns a reduced-scale config the suite can run in
// seconds. The comparison is clean-vs-faulted under identical conditions,
// so paper-scale populations are unnecessary.
func smallDegradation(sc faults.Scenario) DegradationConfig {
	return DegradationConfig{
		Params:   ScenarioParams{Seed: 1, NumClients: 25, NumCandidates: 30, NumReplicas: 80},
		Schedule: ProbeSchedule{Interval: 10 * time.Minute, Probes: 10},
		Faults:   sc,
	}
}

// runDegradation wraps RunDegradation with the shared activation
// assertions: every fault kind in the scenario must actually have fired,
// both in the plane's own counters and in the process-wide obs registry.
func runDegradation(t *testing.T, cfg DegradationConfig) *DegradationOutcome {
	t.Helper()
	before := obs.Default().Snapshot()
	out, err := RunDegradation(cfg)
	if err != nil {
		t.Fatalf("RunDegradation: %v", err)
	}
	after := obs.Default().Snapshot()
	for _, f := range cfg.Faults.Faults {
		if out.Activations[f.Kind] == 0 {
			t.Errorf("fault %s never fired (activations: %v)", f.Kind, out.Activations)
		}
		name := "faults.activations." + string(f.Kind)
		if after.Counters[name] <= before.Counters[name] {
			t.Errorf("obs counter %s did not advance (%d -> %d)",
				name, before.Counters[name], after.Counters[name])
		}
	}
	return out
}

func TestDegradationNoFaultsIsNoOp(t *testing.T) {
	out, err := RunDegradation(smallDegradation(faults.Scenario{Seed: 99}))
	if err != nil {
		t.Fatal(err)
	}
	// An empty fault plane must be fully transparent: both sides of the
	// comparison are the same experiment.
	if out.Clean != out.Faulted {
		t.Fatalf("empty scenario changed the outcome:\nclean:   %+v\nfaulted: %+v", out.Clean, out.Faulted)
	}
	if out.Clean.MeanTop1Rank < 0 || out.Clean.Clusters == 0 {
		t.Fatalf("degenerate clean metrics: %+v", out.Clean)
	}
}

func TestDegradationUnderProbeLoss(t *testing.T) {
	out := runDegradation(t, smallDegradation(faults.Scenario{
		Seed: 7,
		Faults: []faults.Fault{
			{Kind: faults.ProbeLoss, Rate: 0.3},
		},
	}))
	// 30% probe loss thins histories but the ratio-map signal must survive:
	// no client should end up signal-less, and ranking should degrade
	// modestly, not collapse.
	if err := out.Check(Envelope{
		MaxTop1RankSlack:   4,
		MaxNoSignalFrac:    0.1,
		MaxGoodClusterDrop: 0.35,
	}); err != nil {
		t.Fatalf("outcome outside envelope: %v\nclean:   %+v\nfaulted: %+v", err, out.Clean, out.Faulted)
	}
}

func TestDegradationUnderLDNSOutage(t *testing.T) {
	// A mid-run outage takes out a third of the probe schedule.
	out := runDegradation(t, smallDegradation(faults.Scenario{
		Seed: 7,
		Faults: []faults.Fault{
			{Kind: faults.LDNSOutage, Start: faults.Duration(30 * time.Minute), Stop: faults.Duration(60 * time.Minute)},
		},
	}))
	if err := out.Check(Envelope{
		MaxTop1RankSlack:   4,
		MaxNoSignalFrac:    0.1,
		MaxGoodClusterDrop: 0.35,
	}); err != nil {
		t.Fatalf("outcome outside envelope: %v\nclean:   %+v\nfaulted: %+v", err, out.Clean, out.Faulted)
	}
}

func TestDegradationUnderCDNFreezeAndChurn(t *testing.T) {
	out := runDegradation(t, smallDegradation(faults.Scenario{
		Seed: 13,
		Faults: []faults.Fault{
			// The CDN's map wedges for half an hour mid-run...
			{Kind: faults.CDNFreeze, Start: faults.Duration(20 * time.Minute), Stop: faults.Duration(50 * time.Minute)},
			// ...while a tenth of probe rounds go out through churned LDNS
			// identities.
			{Kind: faults.LDNSChurn, Rate: 0.1, Period: faults.Duration(10 * time.Minute)},
		},
	}))
	if err := out.Check(Envelope{
		MaxTop1RankSlack:   6,
		MaxNoSignalFrac:    0.15,
		MaxGoodClusterDrop: 0.4,
	}); err != nil {
		t.Fatalf("outcome outside envelope: %v\nclean:   %+v\nfaulted: %+v", err, out.Clean, out.Faulted)
	}
}

func TestDegradationUnderStormAndSkew(t *testing.T) {
	out := runDegradation(t, smallDegradation(faults.Scenario{
		Seed: 19,
		Faults: []faults.Fault{
			{Kind: faults.Congestion, Target: "europe", ExtraMs: 120, Start: 0, Stop: faults.Duration(time.Hour)},
			{Kind: faults.ClockSkew, Skew: faults.Duration(5 * time.Minute)},
		},
	}))
	// CRP positions from redirection *ratios*, not latencies, so a regional
	// congestion storm and modest clock skew should barely dent accuracy —
	// the paper's core robustness claim.
	if err := out.Check(Envelope{
		MaxTop1RankSlack:   3,
		MaxNoSignalFrac:    0.05,
		MaxGoodClusterDrop: 0.3,
	}); err != nil {
		t.Fatalf("outcome outside envelope: %v\nclean:   %+v\nfaulted: %+v", err, out.Clean, out.Faulted)
	}
}

func TestDegradationRerunIsByteIdentical(t *testing.T) {
	cfg := smallDegradation(faults.Scenario{
		Seed: 7,
		Faults: []faults.Fault{
			{Kind: faults.ProbeLoss, Rate: 0.25},
			{Kind: faults.CDNFlap, Period: faults.Duration(15 * time.Minute)},
		},
	})
	marshal := func() []byte {
		t.Helper()
		out, err := RunDegradation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("same scenario, different bytes:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

func TestDegradationStructuredErrors(t *testing.T) {
	// Invalid scenarios must surface as errors, not panics or silence.
	cfg := smallDegradation(faults.Scenario{
		Faults: []faults.Fault{{Kind: "meteor"}},
	})
	if _, err := RunDegradation(cfg); err == nil {
		t.Fatal("invalid fault kind accepted")
	}
	bad := smallDegradation(faults.Scenario{})
	bad.Schedule.Interval = -time.Second
	if _, err := RunDegradation(bad); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}
