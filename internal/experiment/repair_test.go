package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestRunPathRepairShape(t *testing.T) {
	s := testScenario(t)
	outcome, err := s.RunPathRepair(RepairConfig{
		NumPaths: 80,
		Schedule: ProbeSchedule{Interval: 10 * time.Minute, Probes: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Results) != 80 {
		t.Fatalf("results = %d, want 80", len(outcome.Results))
	}

	// Ordering invariants: the original relay is optimal pre-failure, the
	// oracle is optimal post-failure, and every policy is ≥ the oracle.
	for _, r := range outcome.Results {
		if r.Before > r.Oracle+1e-6 && r.Oracle < r.Before {
			// Oracle excludes the failed relay, so it can only be ≥ Before
			// minus noise... actually Before uses the best relay, so Oracle
			// (second-best) must be ≥ Before.
			t.Fatalf("oracle %.1f better than the original best relay %.1f", r.Oracle, r.Before)
		}
		if r.CRP < r.Oracle-1e-6 || r.Random < r.Oracle-1e-6 {
			t.Fatalf("a repair beat the oracle: %+v", r)
		}
	}

	// The headline: CRP same-cluster repair preserves path quality far
	// better than random replacement.
	if outcome.MeanCRP >= outcome.MeanRandom {
		t.Errorf("CRP repair (%.1f ms) no better than random (%.1f ms)",
			outcome.MeanCRP, outcome.MeanRandom)
	}
	if outcome.FracCRPFound < 0.5 {
		t.Errorf("only %.0f%% of relays had cluster-mates", 100*outcome.FracCRPFound)
	}
	if outcome.FracCRPNearOracle < 0.5 {
		t.Errorf("only %.0f%% of CRP repairs stayed near the oracle repair",
			100*outcome.FracCRPNearOracle)
	}
}

func TestRunPathRepairValidation(t *testing.T) {
	sc, err := NewScenario(ScenarioParams{Seed: 1, NumClients: 3, NumCandidates: 5, NumReplicas: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunPathRepair(RepairConfig{NumPaths: 5}); err == nil {
		t.Error("too few clients should fail")
	}
}

func TestRenderPathRepair(t *testing.T) {
	s := testScenario(t)
	outcome, err := s.RunPathRepair(RepairConfig{
		NumPaths: 20,
		Schedule: ProbeSchedule{Interval: 10 * time.Minute, Probes: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderPathRepair(outcome)
	for _, want := range []string{"path repair", "oracle repair", "crp same-cluster", "random repair"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
