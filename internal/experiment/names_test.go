package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cdn"
)

func TestRunNameSelectionRejectsGlobalName(t *testing.T) {
	s := testScenario(t)
	rows, err := s.RunNameSelection(20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 names (2 regular + 1 global)", len(rows))
	}
	for _, r := range rows {
		isGlobal := strings.Contains(r.Quality.Name, "akam-owned")
		if isGlobal && r.Kept {
			t.Errorf("owned-domain name %q survived selection: %+v", r.Quality.Name, r.Quality)
		}
		if !isGlobal && !r.Kept {
			t.Errorf("regular name %q was rejected: %+v", r.Quality.Name, r.Quality)
		}
		if isGlobal && r.Quality.FilteredFraction < 0.99 {
			t.Errorf("owned-domain name filtered fraction = %v, want ~1", r.Quality.FilteredFraction)
		}
	}
}

func TestRunNameSelectionDefaults(t *testing.T) {
	s := testScenario(t)
	rows, err := s.RunNameSelection(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows with default arguments")
	}
}

func TestRenderNameSelection(t *testing.T) {
	s := testScenario(t)
	rows, err := s.RunNameSelection(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderNameSelection(rows)
	for _, want := range []string{"adaptive CDN-name selection", "akam-owned", "kept"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOverheadTable(t *testing.T) {
	rows := OverheadTable(cdn.DefaultTTL, []time.Duration{100 * time.Minute, 10 * time.Minute})
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	web := rows[0]
	if web.LookupsPerDay != 360 { // 2h browsing at one lookup per 20s
		t.Errorf("web lookups/day = %v, want 360", web.LookupsPerDay)
	}
	crp100 := rows[1]
	if crp100.LookupsPerDay != 14.4 {
		t.Errorf("100-min CRP lookups/day = %v, want 14.4", crp100.LookupsPerDay)
	}
	// The §VI claim: a 100-minute CRP client is a small fraction of an
	// ordinary web client's load.
	if crp100.RelativeToWeb > 0.05 {
		t.Errorf("100-min CRP load = %.1f%% of a web client, want ≤ 5%%", 100*crp100.RelativeToWeb)
	}
	passive := rows[len(rows)-1]
	if passive.LookupsPerDay != 0 || passive.RelativeToWeb != 0 {
		t.Errorf("passive row = %+v, want zero load", passive)
	}
}

func TestRenderOverhead(t *testing.T) {
	out := RenderOverhead(OverheadTable(0, []time.Duration{100 * time.Minute}))
	for _, want := range []string{"commensalism", "web client", "passive"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
