package experiment

import (
	"strings"
	"testing"
)

func TestRenderSimilarityAblationOutput(t *testing.T) {
	out := RenderSimilarityAblation([]SimilarityAblationRow{
		{Label: "cosine", MeanRTT: 25.4, MeanRank: 4.5},
		{Label: "jaccard", MeanRTT: 25.7, MeanRank: 4.3},
	})
	for _, want := range []string{"similarity metric", "cosine", "jaccard", "25.4", "4.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCoverageSweepOutput(t *testing.T) {
	out := RenderCoverageSweep([]CoveragePoint{
		{Replicas: 150, MeanCRPTopK: 35.3, MeanOptimal: 20.2, FracNoSignal: 0},
		{Replicas: 1200, MeanCRPTopK: 50.6, MeanOptimal: 22.1, FracNoSignal: 0.002},
	})
	for _, want := range []string{"CDN deployment size", "150", "1200", "50.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCenterAblationOutput(t *testing.T) {
	out := RenderCenterAblation([]CenterAblationRow{
		{Label: "SMF centers", GoodBuckets: []int{17, 28}},
		{Label: "random centers", GoodBuckets: []int{6, 21}},
	})
	for _, want := range []string{"SMF centers", "random centers", "17", "21"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderBaselineComparisonOutput(t *testing.T) {
	out := RenderBaselineComparison([]BaselineRow{
		{Label: "optimal", MeanRTT: 20.1},
		{Label: "vivaldi", MeanRTT: 85.5},
	})
	for _, want := range []string{"selection baselines", "optimal", "vivaldi", "85.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderRankSeriesEmpty(t *testing.T) {
	out := RenderRankSeries("Fig. X", []RankSeries{{Label: "empty", ClientsTotal: 10}})
	if !strings.Contains(out, "0/10 clients with signal") {
		t.Errorf("empty series not reported:\n%s", out)
	}
}
