package experiment

import (
	"strings"
	"testing"
	"time"
)

func ablationSchedule() ProbeSchedule {
	return ProbeSchedule{Interval: 10 * time.Minute, Probes: 24}
}

func TestRunSimilarityAblation(t *testing.T) {
	s := testScenario(t)
	rows, err := s.RunSimilarityAblation(ClosestNodeConfig{Schedule: ablationSchedule()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 metrics", len(rows))
	}
	byLabel := map[string]SimilarityAblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.MeanRTT <= 0 || r.MeanRank < 0 {
			t.Errorf("row %q has degenerate stats: %+v", r.Label, r)
		}
	}
	// All three metrics must select usefully (small mean ranks out of 240
	// candidates); which one wins is an empirical ablation finding recorded
	// in EXPERIMENTS.md, not an invariant.
	for _, label := range []string{"cosine", "jaccard", "overlap-count"} {
		if byLabel[label].MeanRank > 20 {
			t.Errorf("%s mean rank %.1f out of %d candidates: selection not useful",
				label, byLabel[label].MeanRank, len(s.Candidates))
		}
	}
}

func TestRunCoverageSweep(t *testing.T) {
	base := ScenarioParams{Seed: 1, NumClients: 60, NumCandidates: 60, NumReplicas: 0}
	points, err := RunCoverageSweep(base, []int{60, 240}, ClosestNodeConfig{
		Schedule: ProbeSchedule{Interval: 10 * time.Minute, Probes: 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Coverage effects are non-monotone (too sparse: no nearby signal; too
	// dense: each vantage point sees a unique replica set and overlap
	// vanishes — see EXPERIMENTS.md), so assert invariants, not direction.
	for _, p := range points {
		if p.MeanCRPTopK < p.MeanOptimal {
			t.Errorf("impossible: CRP %.1f below optimal %.1f at %d replicas",
				p.MeanCRPTopK, p.MeanOptimal, p.Replicas)
		}
		if p.FracNoSignal > 0.5 {
			t.Errorf("%d replicas left %.0f%% of clients with no signal",
				p.Replicas, 100*p.FracNoSignal)
		}
		if p.MeanCRPTopK > 5*p.MeanOptimal {
			t.Errorf("CRP degenerate at %d replicas: %.1f ms vs optimal %.1f ms",
				p.Replicas, p.MeanCRPTopK, p.MeanOptimal)
		}
	}
}

func TestRunCenterAblation(t *testing.T) {
	s := testScenario(t)
	rows, err := s.RunCenterAblation(ClusteringConfig{
		NumNodes: 80, Schedule: ablationSchedule(), SecondPass: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "SMF centers" || rows[1].Label != "random centers" {
		t.Errorf("labels = %q, %q", rows[0].Label, rows[1].Label)
	}
	smfGood := rows[0].GoodBuckets[0] + rows[0].GoodBuckets[1]
	randGood := rows[1].GoodBuckets[0] + rows[1].GoodBuckets[1]
	if smfGood < randGood-2 {
		t.Errorf("SMF found %d good clusters, random centers %d; SMF should not lose clearly",
			smfGood, randGood)
	}
}

func TestRunBaselineComparison(t *testing.T) {
	s := testScenario(t)
	rows, err := s.RunBaselineComparison(ClosestNodeConfig{Schedule: ablationSchedule()})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.MeanRTT
	}
	for _, label := range []string{"optimal", "crp top1", "meridian", "binning", "gnp", "vivaldi", "random"} {
		if byLabel[label] <= 0 {
			t.Errorf("missing or degenerate row %q", label)
		}
	}
	// Sanity ordering: optimal is the floor, random the ceiling among
	// informed systems.
	if byLabel["optimal"] > byLabel["crp top1"] || byLabel["optimal"] > byLabel["meridian"] {
		t.Error("optimal is not the floor")
	}
	if byLabel["crp top1"] >= byLabel["random"] {
		t.Errorf("CRP top1 %.1f not better than random %.1f", byLabel["crp top1"], byLabel["random"])
	}
	if byLabel["meridian"] >= byLabel["random"] {
		t.Errorf("meridian %.1f not better than random %.1f", byLabel["meridian"], byLabel["random"])
	}
	if byLabel["vivaldi"] >= byLabel["random"] {
		t.Errorf("vivaldi %.1f not better than random %.1f", byLabel["vivaldi"], byLabel["random"])
	}
	if byLabel["binning"] >= byLabel["random"] {
		t.Errorf("binning %.1f not better than random %.1f", byLabel["binning"], byLabel["random"])
	}
	if byLabel["gnp"] >= byLabel["random"] {
		t.Errorf("gnp %.1f not better than random %.1f", byLabel["gnp"], byLabel["random"])
	}
}

func TestRenderers(t *testing.T) {
	s := testScenario(t)
	outcome, err := s.RunClosestNode(ClosestNodeConfig{Schedule: ablationSchedule()})
	if err != nil {
		t.Fatal(err)
	}
	fig4 := RenderFig4(outcome)
	for _, want := range []string{"Fig. 4", "Meridian", "CRP Top1", "CRP Top5", "Optimal", "mean latency"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("Fig4 output missing %q:\n%s", want, fig4)
		}
	}
	fig5 := RenderFig5(outcome)
	if !strings.Contains(fig5, "Fig. 5") || !strings.Contains(fig5, "relative error") {
		t.Errorf("Fig5 output malformed:\n%s", fig5)
	}

	cl, err := s.RunClustering(ClusteringConfig{NumNodes: 60, Schedule: ablationSchedule(), SecondPass: true})
	if err != nil {
		t.Fatal(err)
	}
	t1 := RenderTable1(cl)
	for _, want := range []string{"Table I", "CRP (t=0.01)", "CRP (t=0.1)", "CRP (t=0.5)", "ASN"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, t1)
		}
	}
	if out := RenderFig6(cl); !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "good clusters") {
		t.Errorf("Fig6 output malformed:\n%s", out)
	}
	if out := RenderFig7(cl); !strings.Contains(out, "Fig. 7") || !strings.Contains(out, "ASN") {
		t.Errorf("Fig7 output malformed:\n%s", out)
	}

	series, err := s.RunWindowSweep([]int{0, 10}, 10*time.Minute, RankSweepConfig{
		Duration: 24 * time.Hour, CandidateInterval: time.Hour, DecisionPoints: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderRankSeries("Fig. 9 — windows", series); !strings.Contains(out, "Top1 all probes") {
		t.Errorf("rank series output malformed:\n%s", out)
	}
}

func TestQuantile(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := quantile(series, tt.q); got != tt.want {
			t.Errorf("quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile of empty = %v", got)
	}
}
