package experiment

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/crp"
	"repro/internal/binning"
	"repro/internal/gnp"
	"repro/internal/netsim"
	"repro/internal/vivaldi"
)

// Ablations beyond the paper's own evaluation, quantifying the design
// choices DESIGN.md calls out: the cosine similarity metric (vs. cruder
// set-overlap metrics), the SMF center-selection heuristic (vs. random
// centers), the dependence on CDN coverage density, and a Vivaldi
// network-coordinates baseline.

// SimilarityAblationRow reports closest-node quality for one similarity
// metric.
type SimilarityAblationRow struct {
	Label    string
	MeanRTT  float64
	MeanRank float64
}

// RunSimilarityAblation replays the closest-node experiment with three
// similarity metrics: the paper's frequency-weighted cosine similarity, the
// set-based Jaccard index, and a raw shared-replica count.
func (s *Scenario) RunSimilarityAblation(cfg ClosestNodeConfig) ([]SimilarityAblationRow, error) {
	cfg.setDefaults()
	candMaps, err := s.candidateMaps(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	evalAt := cfg.Schedule.End() + 1

	metrics := []struct {
		label string
		sim   func(a, b crp.RatioMap) float64
	}{
		{"cosine", crp.CosineSimilarity},
		{"jaccard", crp.JaccardSimilarity},
		{"overlap-count", func(a, b crp.RatioMap) float64 { return float64(crp.OverlapCount(a, b)) }},
	}

	// Stable candidate ordering for iteration.
	candIDs := make([]crp.NodeID, 0, len(candMaps))
	for id := range candMaps {
		candIDs = append(candIDs, id)
	}
	sort.Slice(candIDs, func(i, j int) bool { return candIDs[i] < candIDs[j] })

	rows := make([]SimilarityAblationRow, len(metrics))
	for i, m := range metrics {
		rows[i].Label = m.label
	}
	for _, client := range s.Clients {
		tr, err := s.CollectTracker(client, cfg.Schedule)
		if err != nil {
			return nil, err
		}
		clientMap := tr.RatioMap()

		// True ordering once per client.
		rtts := make(map[crp.NodeID]float64, len(candIDs))
		type candRTT struct {
			id  crp.NodeID
			rtt float64
		}
		order := make([]candRTT, len(candIDs))
		for j, id := range candIDs {
			host, _ := s.HostOf(id)
			rtt := s.TruthRTTMs(client, host, evalAt)
			rtts[id] = rtt
			order[j] = candRTT{id, rtt}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].rtt < order[b].rtt })
		rank := make(map[crp.NodeID]int, len(order))
		for j, c := range order {
			rank[c.id] = j
		}

		for mi, m := range metrics {
			bestID, bestSim := candIDs[0], -1.0
			for _, id := range candIDs {
				if sim := m.sim(clientMap, candMaps[id]); sim > bestSim {
					bestID, bestSim = id, sim
				}
			}
			rows[mi].MeanRTT += rtts[bestID]
			rows[mi].MeanRank += float64(rank[bestID])
		}
	}
	n := float64(len(s.Clients))
	for i := range rows {
		rows[i].MeanRTT /= n
		rows[i].MeanRank /= n
	}
	return rows, nil
}

// CoveragePoint reports CRP quality under one CDN deployment size.
type CoveragePoint struct {
	Replicas     int
	MeanCRPTopK  float64
	MeanOptimal  float64
	FracNoSignal float64
}

// RunCoverageSweep rebuilds the scenario with progressively larger CDN
// deployments and reports CRP's closest-node quality at each size — the
// paper's observation that CRP accuracy tracks the CDN's coverage in the
// client's region, made quantitative.
func RunCoverageSweep(base ScenarioParams, replicaCounts []int, cfg ClosestNodeConfig) ([]CoveragePoint, error) {
	var out []CoveragePoint
	for _, n := range replicaCounts {
		p := base
		p.NumReplicas = n
		sc, err := NewScenario(p)
		if err != nil {
			return nil, fmt.Errorf("scenario with %d replicas: %w", n, err)
		}
		outcome, err := sc.RunClosestNode(cfg)
		if err != nil {
			return nil, fmt.Errorf("closest-node with %d replicas: %w", n, err)
		}
		st := outcome.Stats()
		out = append(out, CoveragePoint{
			Replicas:     n,
			MeanCRPTopK:  st.MeanCRPTopK,
			MeanOptimal:  st.MeanOptimal,
			FracNoSignal: st.FracNoSignal,
		})
	}
	return out, nil
}

// CenterAblationRow compares cluster quality for one center-selection
// policy.
type CenterAblationRow struct {
	Label       string
	Summary     crp.Summary
	GoodBuckets []int
}

// RunCenterAblation compares SMF's strongest-mappings-first center selection
// against choosing the same number of centers uniformly at random.
func (s *Scenario) RunCenterAblation(cfg ClusteringConfig) ([]CenterAblationRow, error) {
	cfg.setDefaults()
	nodes := s.Clients[:cfg.NumNodes]
	evalAt := cfg.Schedule.End() + 1
	dist, err := s.clusterDistance(nodes, evalAt, false)
	if err != nil {
		return nil, err
	}
	maps, err := s.CollectRatioMaps(nodes, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	crpNodes := make([]crp.Node, 0, len(nodes))
	for _, id := range nodes {
		crpNodes = append(crpNodes, crp.Node{ID: s.NodeID(id), Map: maps[id]})
	}

	smfClusters, err := crp.ClusterSMF(crpNodes, crp.ClusterConfig{
		Threshold: cfg.FocusThreshold, SecondPass: cfg.SecondPass, Seed: s.Params.Seed,
	})
	if err != nil {
		return nil, err
	}
	smfRow, err := s.analyzeClusters("SMF centers", smfClusters, len(nodes), dist, cfg.MaxDiameterMs)
	if err != nil {
		return nil, err
	}

	// Random centers: same center count as SMF's multi-node clusters.
	numCenters := 0
	for _, c := range smfClusters {
		if c.Size() >= 2 {
			numCenters++
		}
	}
	randClusters := clusterRandomCenters(crpNodes, numCenters, cfg.FocusThreshold, s.Params.Seed)
	randRow, err := s.analyzeClusters("random centers", randClusters, len(nodes), dist, cfg.MaxDiameterMs)
	if err != nil {
		return nil, err
	}

	return []CenterAblationRow{
		{Label: smfRow.Label, Summary: smfRow.Summary, GoodBuckets: smfRow.GoodBuckets},
		{Label: randRow.Label, Summary: randRow.Summary, GoodBuckets: randRow.GoodBuckets},
	}, nil
}

// clusterRandomCenters assigns nodes to k uniformly chosen centers with the
// same similarity-threshold rule as SMF's assignment pass.
func clusterRandomCenters(nodes []crp.Node, k int, threshold float64, seed int64) []crp.Cluster {
	if k <= 0 || len(nodes) == 0 {
		var out []crp.Cluster
		for _, n := range nodes {
			out = append(out, crp.Cluster{Center: n.ID, Members: []crp.NodeID{n.ID}})
		}
		return out
	}
	sorted := make([]crp.Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	rng := rand.New(rand.NewPCG(uint64(seed), 0x72616e64))
	perm := rng.Perm(len(sorted))
	if k > len(sorted) {
		k = len(sorted)
	}
	centers := make([]crp.Node, k)
	isCenter := make(map[crp.NodeID]bool, k)
	for i := 0; i < k; i++ {
		centers[i] = sorted[perm[i]]
		isCenter[centers[i].ID] = true
	}
	clusters := make(map[crp.NodeID]*crp.Cluster, k)
	for _, c := range centers {
		clusters[c.ID] = &crp.Cluster{Center: c.ID, Members: []crp.NodeID{c.ID}}
	}
	var out []crp.Cluster
	for _, n := range sorted {
		if isCenter[n.ID] {
			continue
		}
		var bestC crp.NodeID
		bestSim := -1.0
		for _, c := range centers {
			if sim := crp.CosineSimilarity(n.Map, c.Map); sim > bestSim {
				bestC, bestSim = c.ID, sim
			}
		}
		if bestSim >= threshold && bestSim > 0 {
			clusters[bestC].Members = append(clusters[bestC].Members, n.ID)
		} else {
			out = append(out, crp.Cluster{Center: n.ID, Members: []crp.NodeID{n.ID}})
		}
	}
	for _, c := range centers {
		out = append(out, *clusters[c.ID])
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Center < out[j].Center
	})
	return out
}

// BaselineRow reports mean selected-server RTT for one selection system.
type BaselineRow struct {
	Label   string
	MeanRTT float64
}

// RunBaselineComparison compares every selection approach in the repository
// on the same scenario: CRP Top-1/Top-K, Meridian, Vivaldi coordinates, GNP
// landmark coordinates, Ratnasamy-style landmark binning, a uniformly
// random pick, and the true optimum.
func (s *Scenario) RunBaselineComparison(cfg ClosestNodeConfig) ([]BaselineRow, error) {
	cfg.setDefaults()
	outcome, err := s.RunClosestNode(cfg)
	if err != nil {
		return nil, err
	}
	st := outcome.Stats()

	hosts := make([]netsim.HostID, 0, len(s.Clients)+len(s.Candidates))
	hosts = append(hosts, s.Clients...)
	hosts = append(hosts, s.Candidates...)
	sys, err := vivaldi.Embed(vivaldi.Config{Topo: s.Topo, Hosts: hosts, Seed: s.Params.Seed})
	if err != nil {
		return nil, err
	}

	// Landmark binning, the relative-positioning prior work the paper
	// contrasts with: every participant probes 10 landmarks directly.
	landmarks, err := binning.ChooseLandmarks(s.Topo, s.Candidates, 10)
	if err != nil {
		return nil, err
	}
	bins, err := binning.Measure(binning.Config{Topo: s.Topo, Landmarks: landmarks}, hosts, 0)
	if err != nil {
		return nil, err
	}

	// GNP, the landmark-based absolute embedding ([30]).
	gnpSys, err := gnp.New(gnp.Config{Topo: s.Topo, Landmarks: landmarks, Seed: s.Params.Seed})
	if err != nil {
		return nil, err
	}
	if err := gnpSys.Embed(hosts); err != nil {
		return nil, err
	}

	evalAt := outcome.EvalAt
	rng := rand.New(rand.NewPCG(uint64(s.Params.Seed), 0x62617365))
	var vivaldiSum, binningSum, gnpSum, randomSum float64
	for _, client := range s.Clients {
		pick, err := sys.SelectClosest(client, s.Candidates)
		if err != nil {
			return nil, err
		}
		vivaldiSum += s.TruthRTTMs(client, pick, evalAt)
		binPick, err := bins.SelectClosest(client, s.Candidates)
		if err != nil {
			return nil, err
		}
		binningSum += s.TruthRTTMs(client, binPick, evalAt)
		gnpPick, err := gnpSys.SelectClosest(client, s.Candidates)
		if err != nil {
			return nil, err
		}
		gnpSum += s.TruthRTTMs(client, gnpPick, evalAt)
		randomSum += s.TruthRTTMs(client, s.Candidates[rng.IntN(len(s.Candidates))], evalAt)
	}
	n := float64(len(s.Clients))

	return []BaselineRow{
		{Label: "optimal", MeanRTT: st.MeanOptimal},
		{Label: fmt.Sprintf("crp top%d", outcome.Config.TopK), MeanRTT: st.MeanCRPTopK},
		{Label: "crp top1", MeanRTT: st.MeanCRPTop1},
		{Label: "meridian", MeanRTT: st.MeanMeridian},
		{Label: "binning", MeanRTT: binningSum / n},
		{Label: "gnp", MeanRTT: gnpSum / n},
		{Label: "vivaldi", MeanRTT: vivaldiSum / n},
		{Label: "random", MeanRTT: randomSum / n},
	}, nil
}
