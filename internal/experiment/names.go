package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/crp"
	"repro/internal/cdn"
)

// This file implements the paper's §VI deployment guidance as runnable
// experiments: adaptive CDN-name selection (reject names whose answers
// carry no positioning information) and the query-overhead accounting
// behind the claim that a CRP service is commensalistic with the CDNs it
// reuses.

// NameSelectionRow reports one CDN name's measured quality and the
// selector's verdict.
type NameSelectionRow struct {
	Quality crp.NameQuality
	Kept    bool
}

// RunNameSelection deploys a CDN that serves the scenario's regular names
// plus one "owned-domain" global name (answered from the CDN's distant
// default servers for everyone), has a sample of clients bootstrap against
// all names — recording redirections and bootstrap pings — and runs the
// paper's two §VI selection rules. The regular names must survive and the
// global name must be rejected.
func (s *Scenario) RunNameSelection(sampleClients, bootstrapProbes int) ([]NameSelectionRow, error) {
	if sampleClients <= 0 {
		sampleClients = 30
	}
	if bootstrapProbes <= 0 {
		bootstrapProbes = 10
	}
	if sampleClients > len(s.Clients) {
		sampleClients = len(s.Clients)
	}

	const globalName = "a1105.akam-owned.cdn.sim."
	network, err := cdn.New(cdn.Config{Topo: s.Topo, GlobalNames: []string{globalName}})
	if err != nil {
		return nil, fmt.Errorf("deploy name-selection CDN: %w", err)
	}

	selector := crp.NewNameSelector()
	for ci := 0; ci < sampleClients; ci++ {
		client := s.Clients[ci]
		for p := 0; p < bootstrapProbes; p++ {
			at := time.Duration(p) * 10 * time.Minute
			for _, name := range network.Names() {
				replicas, err := network.Redirect(name, client, at)
				if err != nil {
					return nil, err
				}
				ids := make([]crp.ReplicaID, len(replicas))
				flagged := make([]bool, len(replicas))
				for i, r := range replicas {
					ids[i] = s.ReplicaID(r)
					// The paper's no-probing filter rule: answers from the
					// CDN's own (owned-domain / default) servers carry no
					// positioning information.
					flagged[i] = network.IsFallback(r)
				}
				selector.RecordLookup(name, ids, flagged)
				// Bootstrap pings, the paper's probing-based rule.
				for _, r := range replicas {
					selector.RecordPing(name, s.Topo.MeasureRTTMs(client, r, at, uint64(client)))
				}
			}
		}
	}

	kept := map[string]bool{}
	for _, name := range selector.Select(crp.SelectCriteria{MaxMedianPingMs: 120}) {
		kept[name] = true
	}
	var rows []NameSelectionRow
	for _, q := range selector.Qualities() {
		rows = append(rows, NameSelectionRow{Quality: q, Kept: kept[q.Name]})
	}
	return rows, nil
}

// RenderNameSelection prints the name-selection experiment.
func RenderNameSelection(rows []NameSelectionRow) string {
	var sb strings.Builder
	sb.WriteString("§VI — adaptive CDN-name selection\n")
	fmt.Fprintf(&sb, "%-28s %8s %9s %10s %12s %6s\n",
		"name", "lookups", "replicas", "filtered", "med ping ms", "kept")
	for _, r := range rows {
		q := r.Quality
		fmt.Fprintf(&sb, "%-28s %8d %9d %9.0f%% %12.1f %6v\n",
			q.Name, q.Lookups, q.DistinctReplicas, 100*q.FilteredFraction, q.MedianPingMs, r.Kept)
	}
	return sb.String()
}

// OverheadRow compares one client behaviour's DNS load on the CDN.
type OverheadRow struct {
	Label         string
	LookupsPerDay float64
	// RelativeToWeb is the load relative to an ordinary active web client.
	RelativeToWeb float64
}

// webBrowsingHoursPerDay approximates an active web user: during browsing,
// the CDN-accelerated name is re-resolved every TTL expiry.
const webBrowsingHoursPerDay = 2.0

// OverheadTable quantifies the paper's §VI commensalism argument: with
// Akamai's 20-second TTLs, an ordinary web client re-resolves a CDN name
// hundreds of times a day, while a CRP client probing every 100 minutes
// adds a vanishing fraction of that load — and a passive CRP client adds
// none at all.
func OverheadTable(ttl time.Duration, intervals []time.Duration) []OverheadRow {
	if ttl <= 0 {
		ttl = cdn.DefaultTTL
	}
	web := webBrowsingHoursPerDay * float64(time.Hour/ttl)
	rows := []OverheadRow{
		{Label: "web client (2h browsing)", LookupsPerDay: web, RelativeToWeb: 1},
	}
	for _, iv := range intervals {
		perDay := float64(24*time.Hour) / float64(iv)
		rows = append(rows, OverheadRow{
			Label:         fmt.Sprintf("CRP, %d-min probes", int(iv.Minutes())),
			LookupsPerDay: perDay,
			RelativeToWeb: perDay / web,
		})
	}
	rows = append(rows, OverheadRow{Label: "CRP, passive monitoring", LookupsPerDay: 0, RelativeToWeb: 0})
	return rows
}

// RenderOverhead prints the overhead table.
func RenderOverhead(rows []OverheadRow) string {
	var sb strings.Builder
	sb.WriteString("§VI — DNS load per CDN name per client (commensalism)\n")
	fmt.Fprintf(&sb, "%-28s %14s %14s\n", "client behaviour", "lookups/day", "vs web client")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %14.1f %13.1f%%\n", r.Label, r.LookupsPerDay, 100*r.RelativeToWeb)
	}
	return sb.String()
}
