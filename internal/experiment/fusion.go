package experiment

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/netsim"
)

// The fusion experiment evaluates the multi-CDN substrate: two independent
// CDN deployments (a cdn.Fleet) redirect the same population, every
// observation carries its CDN namespace ("ns!replica"), and the fused
// similarity kernel mixes per-CDN cosines under coverage weighting. The
// evaluation sweeps two axes — the secondary CDN's replica density and the
// clients' probe budget (coverage sparsity) — and in every cell compares the
// fused service's closest-node rank and SMF clustering quality against each
// single-CDN path on its own.

// Fleet member namespaces used throughout the fusion evaluation.
const (
	FusionPrimaryNS   = "cdnA"
	FusionSecondaryNS = "cdnB"
)

// FusionParams sizes the fusion evaluation.
type FusionParams struct {
	Seed          int64
	NumClients    int
	NumCandidates int
	NumReplicas   int
	// Interval is the probe cadence; RichProbes and SparseProbes are the two
	// probe budgets of the coverage axis.
	Interval     time.Duration
	RichProbes   int
	SparseProbes int
	// DenseFraction and SparseFraction are the secondary CDN's
	// ReplicaFraction settings on the replica-density axis. The primary CDN
	// always deploys on every replica host.
	DenseFraction  float64
	SparseFraction float64
	// SecondaryLoadScale makes the secondary CDN's mapping noisier than the
	// primary's, so the two signals differ in quality as real CDNs do.
	SecondaryLoadScale float64
	// TopK is the recommendation width scored in the rank metric.
	TopK int
}

// DefaultFusionParams returns the full-scale configuration.
func DefaultFusionParams() FusionParams {
	return FusionParams{
		Seed:               1,
		NumClients:         150,
		NumCandidates:      120,
		NumReplicas:        500,
		Interval:           10 * time.Minute,
		RichProbes:         36,
		SparseProbes:       6,
		DenseFraction:      1.0,
		SparseFraction:     0.35,
		SecondaryLoadScale: 1.5,
		TopK:               5,
	}
}

func (p *FusionParams) setDefaults() {
	d := DefaultFusionParams()
	if p.NumClients <= 0 {
		p.NumClients = d.NumClients
	}
	if p.NumCandidates <= 0 {
		p.NumCandidates = d.NumCandidates
	}
	if p.NumReplicas <= 0 {
		p.NumReplicas = d.NumReplicas
	}
	if p.Interval <= 0 {
		p.Interval = d.Interval
	}
	if p.RichProbes <= 0 {
		p.RichProbes = d.RichProbes
	}
	if p.SparseProbes <= 0 {
		p.SparseProbes = d.SparseProbes
	}
	if p.DenseFraction <= 0 {
		p.DenseFraction = d.DenseFraction
	}
	if p.SparseFraction <= 0 {
		p.SparseFraction = d.SparseFraction
	}
	if p.SecondaryLoadScale <= 0 {
		p.SecondaryLoadScale = d.SecondaryLoadScale
	}
	if p.TopK <= 0 {
		p.TopK = d.TopK
	}
}

// FusionCell is one point of the density × coverage grid. All fields are
// deterministic in the seed (no timings), so same-seed reruns byte-compare.
type FusionCell struct {
	// Density names the secondary CDN's deployment ("dense" or "sparse").
	// Coverage names the probe regime: "rich" resolves every CDN at every
	// probe step; "sparse" has a smaller probe budget AND each step observes
	// only one deterministically drawn CDN (passive collection), so each
	// single-CDN path sees roughly half the already-thin signal.
	Density           string  `json:"density"`
	Coverage          string  `json:"coverage"`
	SecondaryFraction float64 `json:"secondary_fraction"`
	Probes            int     `json:"probes"`
	Clients           int     `json:"clients"`

	// Mean 0-based closest-node rank (position of the top-1 recommendation
	// in the true RTT ordering of all candidates; lower is better) for the
	// fused kernel and for each CDN queried alone.
	MeanRankFused float64            `json:"mean_rank_fused"`
	MeanRankNS    map[string]float64 `json:"mean_rank_ns"`
	// BestSingleNS is the single CDN with the lowest mean rank.
	BestSingleNS       string  `json:"best_single_ns"`
	MeanRankBestSingle float64 `json:"mean_rank_best_single"`

	// NoSignal counts clients the given path could not position at all
	// (no observations survived fallback filtering); such clients score the
	// expected rank of a blind guess.
	NoSignalFused int            `json:"no_signal_fused"`
	NoSignalNS    map[string]int `json:"no_signal_ns"`

	// SMF clustering quality over the candidate population: mean true
	// intra-cluster RTT across all member pairs (lower = tighter clusters),
	// with the pair and cluster counts for context.
	SMFIntraRTTFused   float64            `json:"smf_intra_rtt_fused"`
	SMFIntraPairsFused int                `json:"smf_intra_pairs_fused"`
	SMFClustersFused   int                `json:"smf_clusters_fused"`
	SMFIntraRTTNS      map[string]float64 `json:"smf_intra_rtt_ns"`
}

// FusionOutcome is the complete grid.
type FusionOutcome struct {
	Params FusionParams `json:"params"`
	Cells  []FusionCell `json:"cells"`
}

// RunFusion evaluates fused multi-CDN positioning against the single-CDN
// paths across the density × coverage grid.
func RunFusion(p FusionParams) (*FusionOutcome, error) {
	p.setDefaults()
	topo, err := fusionTopology(p)
	if err != nil {
		return nil, err
	}
	out := &FusionOutcome{Params: p}
	for _, density := range []struct {
		name string
		frac float64
	}{{"dense", p.DenseFraction}, {"sparse", p.SparseFraction}} {
		fleet, err := cdn.NewFleet(topo, []cdn.Config{
			{Namespace: FusionPrimaryNS},
			{Namespace: FusionSecondaryNS, ReplicaFraction: density.frac, LoadScale: p.SecondaryLoadScale},
		})
		if err != nil {
			return nil, fmt.Errorf("fusion fleet (%s): %w", density.name, err)
		}
		for _, coverage := range []struct {
			name   string
			probes int
			split  bool
		}{{"rich", p.RichProbes, false}, {"sparse", p.SparseProbes, true}} {
			cell, err := runFusionCell(p, topo, fleet, coverage.probes, coverage.split)
			if err != nil {
				return nil, fmt.Errorf("fusion cell %s/%s: %w", density.name, coverage.name, err)
			}
			cell.Density = density.name
			cell.Coverage = coverage.name
			cell.SecondaryFraction = density.frac
			out.Cells = append(out.Cells, *cell)
		}
	}
	return out, nil
}

// fusionTopology generates the shared substrate.
func fusionTopology(p FusionParams) (*netsim.Topology, error) {
	tp := netsim.DefaultParams()
	tp.Seed = p.Seed
	tp.NumClients = p.NumClients
	tp.NumCandidates = p.NumCandidates
	tp.NumReplicas = p.NumReplicas
	topo, err := netsim.Generate(tp)
	if err != nil {
		return nil, fmt.Errorf("generate topology: %w", err)
	}
	return topo, nil
}

// fusionServices is the set of positioning services one cell compares: the
// fused service holds every CDN's qualified observations under the fusion
// kernel; each per-namespace service holds only its own CDN's observations
// (the single-CDN path). The *Cand variants hold the candidate population
// only, for the SMF clustering metric.
type fusionServices struct {
	fused     *crp.Service
	fusedCand *crp.Service
	byNS      map[string]*crp.Service
	byNSCand  map[string]*crp.Service
}

func newFusionServices(namespaces []string) (*fusionServices, error) {
	fs := &fusionServices{
		fused:     crp.NewService(),
		fusedCand: crp.NewService(),
		byNS:      make(map[string]*crp.Service, len(namespaces)),
		byNSCand:  make(map[string]*crp.Service, len(namespaces)),
	}
	if err := fs.fused.EnableFusion(crp.FusionConfig{}); err != nil {
		return nil, err
	}
	if err := fs.fusedCand.EnableFusion(crp.FusionConfig{}); err != nil {
		return nil, err
	}
	for _, ns := range namespaces {
		fs.byNS[ns] = crp.NewService()
		fs.byNSCand[ns] = crp.NewService()
	}
	return fs, nil
}

// domFusionPick seeds the sparse-coverage draw of which CDN a probe step
// observes (disjoint from netsim's and faults' hash domains).
const domFusionPick uint64 = 0xF0_51_0001

// collect probes the fleet on behalf of every client and candidate over the
// schedule, feeding the fused and per-CDN services. With split set (the
// sparse-coverage regime), each probe step observes exactly one
// deterministically drawn fleet member instead of all of them — modelling
// passive collection, where a step sees whichever CDN the client's
// applications happened to touch. The fused service then holds the union of
// complementary half-signals no single-CDN path sees.
func (fs *fusionServices) collect(topo *netsim.Topology, fleet *cdn.Fleet, hosts []netsim.HostID, candidate map[netsim.HostID]bool, probes int, interval time.Duration, split bool, seed int64) error {
	epoch := time.Date(2006, 11, 12, 0, 0, 0, 0, time.UTC)
	members := fleet.Members()
	for _, host := range hosts {
		node := crp.NodeID(topo.Host(host).Name)
		for i := 0; i < probes; i++ {
			at := time.Duration(i) * interval
			pick := -1
			if split {
				pick = int(netsim.Mix(uint64(seed), domFusionPick, uint64(host), uint64(i)) % uint64(len(members)))
			}
			for mi, n := range members {
				if split && mi != pick {
					continue
				}
				ns := n.Namespace()
				for _, name := range n.Names() {
					replicas, err := n.Redirect(name, host, at)
					if err != nil {
						return fmt.Errorf("redirect %q under %q for host %d: %w", name, ns, host, err)
					}
					ids := make([]crp.ReplicaID, 0, len(replicas))
					for _, r := range replicas {
						if n.IsFallback(r) {
							continue
						}
						ids = append(ids, crp.Qualify(crp.Namespace(ns), crp.ReplicaID(topo.Host(r).Name)))
					}
					if len(ids) == 0 {
						continue
					}
					when := epoch.Add(at)
					if err := fs.fused.Observe(node, when, ids...); err != nil {
						return err
					}
					if err := fs.byNS[ns].Observe(node, when, ids...); err != nil {
						return err
					}
					if candidate[host] {
						if err := fs.fusedCand.Observe(node, when, ids...); err != nil {
							return err
						}
						if err := fs.byNSCand[ns].Observe(node, when, ids...); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// runFusionCell collects one (fleet, schedule) cell and scores it.
func runFusionCell(p FusionParams, topo *netsim.Topology, fleet *cdn.Fleet, probes int, split bool) (*FusionCell, error) {
	namespaces := fleet.Namespaces()
	fs, err := newFusionServices(namespaces)
	if err != nil {
		return nil, err
	}
	clients := topo.Clients()
	candidates := topo.Candidates()
	candSet := make(map[netsim.HostID]bool, len(candidates))
	candIDs := make([]crp.NodeID, len(candidates))
	for i, c := range candidates {
		candSet[c] = true
		candIDs[i] = crp.NodeID(topo.Host(c).Name)
	}
	hosts := append(append([]netsim.HostID(nil), clients...), candidates...)
	if err := fs.collect(topo, fleet, hosts, candSet, probes, p.Interval, split, p.Seed); err != nil {
		return nil, err
	}
	evalAt := time.Duration(probes)*p.Interval + time.Minute

	cell := &FusionCell{
		Probes:        probes,
		Clients:       len(clients),
		MeanRankNS:    make(map[string]float64, len(namespaces)),
		NoSignalNS:    make(map[string]int, len(namespaces)),
		SMFIntraRTTNS: make(map[string]float64, len(namespaces)),
	}

	// Each service is queried over the candidates it actually knows: under
	// split coverage a candidate can draw zero probe steps for one CDN, and
	// a CDN cannot recommend a node it has never seen redirect (ClosestTo
	// rejects unknown candidates outright). Ranks are still scored against
	// the full true ordering, so missing candidates cost accuracy naturally.
	fusedCands := knownCandidates(fs.fused, candIDs)
	nsCands := make(map[string][]crp.NodeID, len(namespaces))
	for _, ns := range namespaces {
		nsCands[ns] = knownCandidates(fs.byNS[ns], candIDs)
	}

	// Closest-node ranks. Clients a path cannot position score the expected
	// rank of a blind guess, (n-1)/2, so absent signal is penalized rather
	// than skipped (skipping would reward a CDN for covering fewer clients).
	blind := float64(len(candidates)-1) / 2
	sumFused := 0.0
	sumNS := make(map[string]float64, len(namespaces))
	for _, client := range clients {
		rankOf := fusionTruthOrder(topo, client, candidates, evalAt)
		clientID := crp.NodeID(topo.Host(client).Name)

		if r, ok := fusionRank(fs.fused, clientID, fusedCands, topo, rankOf); ok {
			sumFused += r
		} else {
			sumFused += blind
			cell.NoSignalFused++
		}
		for _, ns := range namespaces {
			if r, ok := fusionRank(fs.byNS[ns], clientID, nsCands[ns], topo, rankOf); ok {
				sumNS[ns] += r
			} else {
				sumNS[ns] += blind
				cell.NoSignalNS[ns]++
			}
		}
	}
	n := float64(len(clients))
	cell.MeanRankFused = sumFused / n
	for _, ns := range namespaces {
		cell.MeanRankNS[ns] = sumNS[ns] / n
	}
	cell.BestSingleNS = namespaces[0]
	cell.MeanRankBestSingle = cell.MeanRankNS[namespaces[0]]
	for _, ns := range namespaces[1:] {
		if cell.MeanRankNS[ns] < cell.MeanRankBestSingle {
			cell.BestSingleNS = ns
			cell.MeanRankBestSingle = cell.MeanRankNS[ns]
		}
	}

	// SMF clustering quality over the candidates.
	ccfg := crp.ClusterConfig{Threshold: crp.DefaultThreshold}
	rtt, pairs, clusters, err := fusionSMF(fs.fusedCand, topo, evalAt, ccfg)
	if err != nil {
		return nil, err
	}
	cell.SMFIntraRTTFused, cell.SMFIntraPairsFused, cell.SMFClustersFused = rtt, pairs, clusters
	for _, ns := range namespaces {
		rtt, _, _, err := fusionSMF(fs.byNSCand[ns], topo, evalAt, ccfg)
		if err != nil {
			return nil, err
		}
		cell.SMFIntraRTTNS[ns] = rtt
	}
	return cell, nil
}

// fusionTruthOrder computes the true RTT ordering of the candidates for one
// client (ties break on host ID) and returns a rank lookup.
func fusionTruthOrder(topo *netsim.Topology, client netsim.HostID, candidates []netsim.HostID, evalAt time.Duration) func(netsim.HostID) int {
	type candRTT struct {
		id  netsim.HostID
		rtt float64
	}
	order := make([]candRTT, len(candidates))
	for i, c := range candidates {
		order[i] = candRTT{c, fusionTruthRTT(topo, client, c, evalAt)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].rtt != order[j].rtt {
			return order[i].rtt < order[j].rtt
		}
		return order[i].id < order[j].id
	})
	rank := make(map[netsim.HostID]int, len(order))
	for i, c := range order {
		rank[c.id] = i
	}
	return func(id netsim.HostID) int {
		if r, ok := rank[id]; ok {
			return r
		}
		return len(order)
	}
}

// fusionTruthRTT mirrors Scenario.TruthRTTMs: the mean of three closely
// spaced true RTT samples.
func fusionTruthRTT(topo *netsim.Topology, a, b netsim.HostID, at time.Duration) float64 {
	const samples = 3
	const spacing = 2 * time.Minute
	sum := 0.0
	for i := 0; i < samples; i++ {
		sum += topo.RTTMs(a, b, at+time.Duration(i)*spacing)
	}
	return sum / samples
}

// knownCandidates filters the candidate list to the nodes the service holds
// a tracker for, preserving order.
func knownCandidates(svc *crp.Service, candidates []crp.NodeID) []crp.NodeID {
	known := make(map[crp.NodeID]bool)
	for _, n := range svc.Nodes() {
		known[n] = true
	}
	out := make([]crp.NodeID, 0, len(candidates))
	for _, c := range candidates {
		if known[c] {
			out = append(out, c)
		}
	}
	return out
}

// fusionRank returns the 0-based true-RTT rank of the service's top-1
// recommendation for the client, or ok=false when the service cannot
// position the client (unknown node or zero similarity everywhere).
func fusionRank(svc *crp.Service, client crp.NodeID, candidates []crp.NodeID, topo *netsim.Topology, rankOf func(netsim.HostID) int) (float64, bool) {
	best, ok, err := svc.ClosestTo(client, candidates)
	if err != nil || !ok || best.Similarity <= 0 {
		return 0, false
	}
	host, found := topo.HostByName(string(best.Node))
	if !found {
		return 0, false
	}
	return float64(rankOf(host)), true
}

// fusionSMF clusters the service's whole population with SMF and returns the
// mean true intra-cluster RTT across member pairs, the pair count and the
// cluster count.
func fusionSMF(svc *crp.Service, topo *netsim.Topology, evalAt time.Duration, cfg crp.ClusterConfig) (meanRTT float64, pairs, clusters int, err error) {
	cls, err := svc.ClusterAll(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	sum := 0.0
	for _, c := range cls {
		for i := 0; i < len(c.Members); i++ {
			hi, ok := topo.HostByName(string(c.Members[i]))
			if !ok {
				continue
			}
			for j := i + 1; j < len(c.Members); j++ {
				hj, ok := topo.HostByName(string(c.Members[j]))
				if !ok {
					continue
				}
				sum += fusionTruthRTT(topo, hi, hj, evalAt)
				pairs++
			}
		}
	}
	if pairs > 0 {
		meanRTT = sum / float64(pairs)
	}
	return meanRTT, pairs, len(cls), nil
}

// FusionIdentityCheck verifies the back-compat pin at experiment scale: a
// service holding one unnamespaced CDN's observations answers bit-identically
// with the fusion kernel enabled or disabled — ratio maps, top-K rankings,
// snapshot bytes and shard digests all compare equal. It returns the first
// divergence found, or nil.
func FusionIdentityCheck(seed int64, numClients, numCandidates, numReplicas, probes int) error {
	p := FusionParams{Seed: seed, NumClients: numClients, NumCandidates: numCandidates, NumReplicas: numReplicas}
	p.setDefaults()
	topo, err := fusionTopology(p)
	if err != nil {
		return err
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		return err
	}
	plain := crp.NewService()
	fused := crp.NewService()
	if err := fused.EnableFusion(crp.FusionConfig{}); err != nil {
		return err
	}

	epoch := time.Date(2006, 11, 12, 0, 0, 0, 0, time.UTC)
	hosts := append(topo.Clients(), topo.Candidates()...)
	for _, host := range hosts {
		node := crp.NodeID(topo.Host(host).Name)
		for i := 0; i < probes; i++ {
			at := time.Duration(i) * p.Interval
			for _, name := range network.Names() {
				replicas, err := network.Redirect(name, host, at)
				if err != nil {
					return err
				}
				ids := make([]crp.ReplicaID, 0, len(replicas))
				for _, r := range replicas {
					if network.IsFallback(r) {
						continue
					}
					ids = append(ids, crp.ReplicaID(topo.Host(r).Name))
				}
				if len(ids) == 0 {
					continue
				}
				when := epoch.Add(at)
				if err := plain.Observe(node, when, ids...); err != nil {
					return err
				}
				if err := fused.Observe(node, when, ids...); err != nil {
					return err
				}
			}
		}
	}

	candIDs := make([]crp.NodeID, 0, numCandidates)
	for _, c := range topo.Candidates() {
		candIDs = append(candIDs, crp.NodeID(topo.Host(c).Name))
	}
	for _, host := range hosts {
		node := crp.NodeID(topo.Host(host).Name)
		pm, perr := plain.RatioMap(node)
		fm, ferr := fused.RatioMap(node)
		if (perr == nil) != (ferr == nil) {
			return fmt.Errorf("fusion identity: RatioMap(%s) error mismatch: %v vs %v", node, perr, ferr)
		}
		if !ratioMapsEqual(pm, fm) {
			return fmt.Errorf("fusion identity: RatioMap(%s) diverges", node)
		}
		pk, perr := plain.TopK(node, candIDs, 5)
		fk, ferr := fused.TopK(node, candIDs, 5)
		if (perr == nil) != (ferr == nil) {
			return fmt.Errorf("fusion identity: TopK(%s) error mismatch: %v vs %v", node, perr, ferr)
		}
		if len(pk) != len(fk) {
			return fmt.Errorf("fusion identity: TopK(%s) length diverges: %d vs %d", node, len(pk), len(fk))
		}
		for i := range pk {
			if pk[i] != fk[i] {
				return fmt.Errorf("fusion identity: TopK(%s)[%d] diverges: %+v vs %+v", node, i, pk[i], fk[i])
			}
		}
	}

	var pb, fb bytes.Buffer
	if err := plain.WriteSnapshot(&pb); err != nil {
		return err
	}
	if err := fused.WriteSnapshot(&fb); err != nil {
		return err
	}
	if !bytes.Equal(pb.Bytes(), fb.Bytes()) {
		return fmt.Errorf("fusion identity: snapshot bytes diverge (%d vs %d bytes)", pb.Len(), fb.Len())
	}
	pd, fd := plain.ShardDigests(), fused.ShardDigests()
	if len(pd) != len(fd) {
		return fmt.Errorf("fusion identity: shard digest widths diverge: %d vs %d", len(pd), len(fd))
	}
	for i := range pd {
		if pd[i] != fd[i] {
			return fmt.Errorf("fusion identity: shard %d digest diverges", i)
		}
	}
	return nil
}

func ratioMapsEqual(a, b crp.RatioMap) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// RenderFusion formats the grid as the human-readable table crpbench prints.
func RenderFusion(o *FusionOutcome) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "Fusion — fused multi-CDN vs single-CDN positioning (mean top-1 rank, lower is better)\n")
	fmt.Fprintf(&buf, "%-8s %-9s %7s  %12s %12s %12s  %6s  %14s %10s\n",
		"density", "coverage", "probes", "fused", FusionPrimaryNS, FusionSecondaryNS, "best", "smf-rtt fused", "smf-pairs")
	for _, c := range o.Cells {
		fmt.Fprintf(&buf, "%-8s %-9s %7d  %12.2f %12.2f %12.2f  %6s  %14.2f %10d\n",
			c.Density, c.Coverage, c.Probes,
			c.MeanRankFused, c.MeanRankNS[FusionPrimaryNS], c.MeanRankNS[FusionSecondaryNS],
			c.BestSingleNS, c.SMFIntraRTTFused, c.SMFIntraPairsFused)
	}
	return buf.String()
}
