// Package experiment reproduces the CRP paper's evaluation (§V–§VI): the
// closest-node selection comparison against Meridian (Figs. 4–5), the
// clustering study against ASN-based clustering (Table I, Figs. 6–7), the
// probe-interval and window-size sensitivity studies (Figs. 8–9), and this
// repository's additional ablations. It wires the substrates together:
// topology and latency model (netsim), CDN redirections (cdn), Meridian and
// Vivaldi baselines, ASN clustering, King ground truth, and the public crp
// package under evaluation.
package experiment

import (
	"errors"
	"fmt"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/faults"
	"repro/internal/meridian"
	"repro/internal/netsim"
)

// ScenarioParams sizes an evaluation scenario. The defaults mirror the
// paper: 1,000 client DNS servers, 240 consistently-active candidate
// (PlanetLab) servers, and a CDN deployment with realistic coverage skew.
type ScenarioParams struct {
	Seed          int64
	NumClients    int
	NumCandidates int
	NumReplicas   int
	// MeridianFailures enables the PlanetLab pathologies the paper observed
	// (self-recommending bootstrappers, nodes that never join, partitioned
	// sites).
	MeridianFailures bool
	// KeepFallbackAnswers disables the paper's §VI filtering rule. By
	// default, redirections to the CDN's distant global-default servers
	// (Akamai's "owned-domain" answers) are dropped from ratio maps, since
	// they carry no positioning information and create spurious similarity
	// between far-apart hosts.
	KeepFallbackAnswers bool
}

// DefaultScenarioParams returns the paper-scale configuration.
func DefaultScenarioParams() ScenarioParams {
	return ScenarioParams{
		Seed:             1,
		NumClients:       1000,
		NumCandidates:    240,
		NumReplicas:      600,
		MeridianFailures: true,
	}
}

// Scenario is a fully built evaluation environment.
type Scenario struct {
	Params     ScenarioParams
	Topo       *netsim.Topology
	CDN        *cdn.Network
	Meridian   *meridian.Overlay
	Clients    []netsim.HostID
	Candidates []netsim.HostID

	// epoch anchors the conversion between the simulator's virtual
	// durations and the wall-clock time.Time values the public crp API uses.
	epoch time.Time

	// faults, when non-nil, is the attached fault-injection plane. The
	// probe path consults it; the topology and CDN consult it through
	// their own injected hooks (see AttachFaults).
	faults *faults.Plane
}

// AttachFaults installs a fault plane across every layer of the scenario:
// the topology's latency model (congestion storms, clock skew), the CDN's
// mapping system (freezes, flaps) and the probe path (probe loss, LDNS
// outage and churn). Passing nil detaches. Runs with the same scenario,
// seed and plane are bit-reproducible.
func (s *Scenario) AttachFaults(p *faults.Plane) {
	s.faults = p
	if p == nil {
		s.Topo.SetPerturb(nil)
		s.CDN.SetMapHook(nil)
		return
	}
	s.Topo.SetPerturb(p)
	s.CDN.SetMapHook(p.MapEpoch)
}

// Failure-injection rates matching the handful of pathological nodes the
// paper reports among 240 members.
const (
	meridianSelfishFraction = 0.02
	meridianDeadFraction    = 0.015
	meridianPartitionPairs  = 2
)

// NewScenario generates the topology, deploys the CDN and builds the
// Meridian overlay, deterministically in p.Seed.
func NewScenario(p ScenarioParams) (*Scenario, error) {
	tp := netsim.DefaultParams()
	tp.Seed = p.Seed
	if p.NumClients > 0 {
		tp.NumClients = p.NumClients
	}
	if p.NumCandidates > 0 {
		tp.NumCandidates = p.NumCandidates
	}
	if p.NumReplicas > 0 {
		tp.NumReplicas = p.NumReplicas
	}
	topo, err := netsim.Generate(tp)
	if err != nil {
		return nil, fmt.Errorf("generate topology: %w", err)
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		return nil, fmt.Errorf("deploy cdn: %w", err)
	}
	mcfg := meridian.Config{Topo: topo, Members: topo.Candidates(), Seed: p.Seed}
	if p.MeridianFailures {
		mcfg.SelfishFraction = meridianSelfishFraction
		mcfg.DeadFraction = meridianDeadFraction
		mcfg.PartitionPairs = meridianPartitionPairs
	}
	overlay, err := meridian.Build(mcfg)
	if err != nil {
		return nil, fmt.Errorf("build meridian overlay: %w", err)
	}
	return &Scenario{
		Params:     p,
		Topo:       topo,
		CDN:        network,
		Meridian:   overlay,
		Clients:    topo.Clients(),
		Candidates: topo.Candidates(),
		epoch:      time.Date(2006, 11, 12, 0, 0, 0, 0, time.UTC), // paper's first day
	}, nil
}

// NodeID returns the crp node identity of a host (its DNS name).
func (s *Scenario) NodeID(id netsim.HostID) crp.NodeID {
	return crp.NodeID(s.Topo.Host(id).Name)
}

// HostOf resolves a crp node identity back to its host.
func (s *Scenario) HostOf(node crp.NodeID) (netsim.HostID, bool) {
	return s.Topo.HostByName(string(node))
}

// ReplicaID returns the crp replica identity of a replica host.
func (s *Scenario) ReplicaID(id netsim.HostID) crp.ReplicaID {
	return crp.ReplicaID(s.Topo.Host(id).Name)
}

// At converts a virtual duration to the wall-clock time.Time used by the
// public crp API.
func (s *Scenario) At(d time.Duration) time.Time { return s.epoch.Add(d) }

// ProbeSchedule describes how a host's redirection history is collected.
type ProbeSchedule struct {
	Start    time.Duration // virtual time of the first probe
	Interval time.Duration // time between probes
	Probes   int           // number of probes
	Window   int           // tracker window in probes; 0 = all probes
}

// Validate checks the schedule.
func (ps ProbeSchedule) Validate() error {
	if ps.Interval <= 0 {
		return errors.New("experiment: probe interval must be positive")
	}
	if ps.Probes <= 0 {
		return errors.New("experiment: probe count must be positive")
	}
	return nil
}

// End returns the virtual time just after the last probe.
func (ps ProbeSchedule) End() time.Duration {
	return ps.Start + time.Duration(ps.Probes-1)*ps.Interval
}

// CollectTracker probes the CDN on the host's behalf according to the
// schedule and returns the populated tracker. Each probe resolves every CDN
// name once (the paper drives CRP with two Akamai-hosted names), and each
// resolution is recorded as one tracker probe.
func (s *Scenario) CollectTracker(host netsim.HostID, ps ProbeSchedule) (*crp.Tracker, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	var opts []crp.TrackerOption
	if ps.Window > 0 {
		// Each probe step resolves all names; size the window in steps.
		opts = append(opts, crp.WithWindow(ps.Window*len(s.CDN.Names())))
	}
	tr := crp.NewTracker(opts...)
	if err := s.probeInto(tr, host, ps); err != nil {
		return nil, err
	}
	return tr, nil
}

// probeInto records the schedule's probes into an existing tracker. With a
// fault plane attached, probes may be lost outright (DNS timeouts, LDNS
// outages), issued through a churned LDNS identity, or stamped with the
// host's skewed clock.
func (s *Scenario) probeInto(tr *crp.Tracker, host netsim.HostID, ps ProbeSchedule) error {
	for i := 0; i < ps.Probes; i++ {
		at := ps.Start + time.Duration(i)*ps.Interval
		ldns := host
		obsAt := at
		if s.faults != nil {
			if s.faults.ProbeLost(host, at) {
				continue // resolver down or resolution timed out: no probe
			}
			ldns = s.faults.ResolverFor(host, at)
			obsAt = at + s.faults.ClockSkew(host, at)
			if obsAt < 0 {
				obsAt = 0
			}
		}
		for _, name := range s.CDN.Names() {
			ids, err := s.lookup(name, ldns, at)
			if err != nil {
				return err
			}
			tr.Observe(s.At(obsAt), ids...)
		}
	}
	return nil
}

// lookup resolves one CDN name for a host and applies the fallback filter,
// returning the replica identities worth tracking (possibly none).
func (s *Scenario) lookup(name string, host netsim.HostID, at time.Duration) ([]crp.ReplicaID, error) {
	replicas, err := s.CDN.Redirect(name, host, at)
	if err != nil {
		return nil, fmt.Errorf("redirect %q for host %d: %w", name, host, err)
	}
	ids := make([]crp.ReplicaID, 0, len(replicas))
	for _, r := range replicas {
		if !s.Params.KeepFallbackAnswers && s.CDN.IsFallback(r) {
			continue
		}
		ids = append(ids, s.ReplicaID(r))
	}
	return ids, nil
}

// CollectRatioMaps collects ratio maps for a set of hosts under one
// schedule.
func (s *Scenario) CollectRatioMaps(hosts []netsim.HostID, ps ProbeSchedule) (map[netsim.HostID]crp.RatioMap, error) {
	out := make(map[netsim.HostID]crp.RatioMap, len(hosts))
	for _, h := range hosts {
		tr, err := s.CollectTracker(h, ps)
		if err != nil {
			return nil, err
		}
		out[h] = tr.RatioMap()
	}
	return out, nil
}

// TruthRTTMs returns the experiment's ground-truth RTT between two hosts at
// virtual time at: the mean of several closely spaced true RTT samples,
// smoothing out single-instant congestion spikes the way the paper's
// repeated King measurements do.
func (s *Scenario) TruthRTTMs(a, b netsim.HostID, at time.Duration) float64 {
	const samples = 3
	const spacing = 2 * time.Minute
	sum := 0.0
	for i := 0; i < samples; i++ {
		sum += s.Topo.RTTMs(a, b, at+time.Duration(i)*spacing)
	}
	return sum / samples
}
