package experiment

import (
	"encoding/json"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

func TestGossipMeshConvergesClean(t *testing.T) {
	out, err := RunGossip(GossipConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Check(GossipEnvelope{MaxRounds: 20}); err != nil {
		t.Fatal(err)
	}
	if out.Nodes != 120 {
		t.Fatalf("nodes = %d, want 120", out.Nodes)
	}
	if len(out.Stats) != 3 {
		t.Fatalf("stats for %d daemons, want 3", len(out.Stats))
	}
	for i, st := range out.Stats {
		if st.Rounds == 0 || st.DeltasApplied == 0 || st.DigestsSent == 0 {
			t.Fatalf("daemon %d counters flat: %+v", i, st)
		}
		if st.BadMsgs != 0 {
			t.Fatalf("daemon %d rejected %d messages on a clean mesh", i, st.BadMsgs)
		}
	}
}

// TestGossipDegradationUnder30PctLoss is the peering plane's degradation
// envelope: with 30% of gossip datagrams dropped, the mesh must still
// converge (anti-entropy repairs what rumors lose), forget must still
// propagate, and the declared round bound must hold. The activation and
// registry assertions pin that the faults actually fired and that the
// peering.* counters reached the process registry.
func TestGossipDegradationUnder30PctLoss(t *testing.T) {
	reg := obs.NewRegistry()
	out, err := RunGossip(GossipConfig{
		Seed:     7,
		Registry: reg,
		Faults: faults.Scenario{
			Seed:   7,
			Faults: []faults.Fault{{Kind: faults.PacketLoss, Rate: 0.3, Target: "gossip"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Activations[faults.PacketLoss] == 0 {
		t.Fatal("packet-loss fault never activated; the envelope check below is vacuous")
	}
	if err := out.Check(GossipEnvelope{MaxRounds: 50}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"peering.rounds", "peering.msgs", "peering.deltas_sent",
		"peering.deltas_applied", "peering.digests_sent", "peering.digest_bytes",
	} {
		if snap.Counters[name] == 0 {
			t.Fatalf("obs counter %s = 0 under loss; peering metrics not wired", name)
		}
	}
	// Loss must actually have cost something: more rounds than clean, or
	// stale/repair traffic. At minimum anti-entropy pulled entries.
	pulls := uint64(0)
	for _, st := range out.Stats {
		pulls += st.Pulls
	}
	if pulls == 0 {
		t.Log("warning: convergence needed no pulls under 30% loss (rumors sufficed)")
	}
}

// TestGossipRerunIsDeterministic pins the property the bench's CI gate
// depends on: same seed, same config => byte-identical marshaled outcome.
func TestGossipRerunIsDeterministic(t *testing.T) {
	cfg := GossipConfig{
		Seed: 11,
		Faults: faults.Scenario{
			Seed:   11,
			Faults: []faults.Fault{{Kind: faults.PacketLoss, Rate: 0.1, Target: "gossip"}},
		},
	}
	run := func() []byte {
		out, err := RunGossip(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed reruns differ:\n%s\n%s", a, b)
	}
}

func TestGossipConfigRejectsSingleDaemon(t *testing.T) {
	if _, err := RunGossip(GossipConfig{Daemons: 1, Seed: 1}); err == nil {
		t.Fatal("want error for a 1-daemon mesh")
	}
}

// TestGossipCodecVariants pins the codec knob: every codec topology
// converges to a faithful replica, the binary mesh actually exchanges
// binary datagrams, a JSON-pinned mesh never does, and the mixed
// (rolling-upgrade) topology keeps its legacy engine pure JSON while the
// upgraded pair talk binary to each other.
func TestGossipCodecVariants(t *testing.T) {
	for _, codec := range []string{"json", "binary", "mixed"} {
		t.Run(codec, func(t *testing.T) {
			out, err := RunGossip(GossipConfig{Seed: 1, Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			if err := out.Check(GossipEnvelope{MaxRounds: 20}); err != nil {
				t.Fatal(err)
			}
			var binTotal uint64
			for i, st := range out.Stats {
				binTotal += st.BinMsgs
				if st.BadMsgs != 0 {
					t.Fatalf("daemon %d rejected %d messages on a clean %s mesh", i, st.BadMsgs, codec)
				}
			}
			switch codec {
			case "json":
				if binTotal != 0 {
					t.Fatalf("JSON mesh exchanged %d binary datagrams", binTotal)
				}
			case "binary":
				if binTotal == 0 {
					t.Fatal("binary mesh never exchanged a binary datagram")
				}
			case "mixed":
				if out.Stats[0].BinMsgs != 0 || out.Stats[0].BinSent != 0 {
					t.Fatalf("legacy engine touched binary: %+v", out.Stats[0])
				}
				if out.Stats[1].BinMsgs == 0 && out.Stats[2].BinMsgs == 0 {
					t.Fatal("upgraded pair never exchanged a binary datagram")
				}
			}
		})
	}
	if _, err := RunGossip(GossipConfig{Seed: 1, Codec: "msgpack"}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
