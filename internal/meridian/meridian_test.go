package meridian

import (
	"math"
	"sort"
	"testing"

	"repro/internal/netsim"
)

func testTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 100
	p.NumCandidates = 60
	p.NumReplicas = 30
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func healthyOverlay(t *testing.T, topo *netsim.Topology) *Overlay {
	t.Helper()
	o, err := Build(Config{Topo: topo, Members: topo.Candidates(), Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return o
}

func TestBuildValidation(t *testing.T) {
	topo := testTopology(t)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil topo", Config{Members: topo.Candidates()}},
		{"no members", Config{Topo: topo}},
		{"unknown member", Config{Topo: topo, Members: []netsim.HostID{-3}}},
		{"duplicate member", Config{Topo: topo, Members: []netsim.HostID{1, 1}}},
		{"bad fraction", Config{Topo: topo, Members: topo.Candidates(), SelfishFraction: 1.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.cfg); err == nil {
				t.Error("Build should fail")
			}
		})
	}
}

func TestRingIndex(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	tests := []struct {
		rtt  float64
		want int
	}{
		{0.5, 1}, {1, 1}, {1.5, 1}, {2, 1}, {2.1, 2}, {4, 2}, {5, 3},
		{250, 8}, {400, 9}, {1e6, DefaultNumRings},
	}
	for _, tt := range tests {
		if got := o.ringIndex(tt.rtt); got != tt.want {
			t.Errorf("ringIndex(%v) = %d, want %d", tt.rtt, got, tt.want)
		}
	}
}

func TestBuildRingsNonOverlappingAndBounded(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	for _, id := range o.Members() {
		n := o.nodes[id]
		seen := map[netsim.HostID]bool{}
		for ri, ring := range n.rings {
			if len(ring) > DefaultRingK {
				t.Errorf("node %d ring %d has %d members, cap %d", id, ri, len(ring), DefaultRingK)
			}
			for _, m := range ring {
				if m == id {
					t.Errorf("node %d contains itself in ring %d", id, ri)
				}
				if seen[m] {
					t.Errorf("node %d has peer %d in two rings", id, m)
				}
				seen[m] = true
			}
		}
	}
}

func TestGossipConnectsOverlay(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	// Every healthy node should know a reasonable number of peers.
	for _, id := range o.Members() {
		n := o.nodes[id]
		if len(n.known) < 5 {
			t.Errorf("node %d knows only %d peers after gossip", id, len(n.known))
		}
	}
}

func TestClosestToFindsGoodNodes(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	members := o.Members()
	entry := members[0]

	// For each target, compare Meridian's pick to the true closest member.
	// With a healthy overlay the recommendation should usually be within 2x
	// (in added latency terms) of optimal.
	goodCount, n := 0, 0
	for i, target := range topo.Clients() {
		if i >= 60 {
			break
		}
		rec, stats, err := o.ClosestTo(entry, target, 0)
		if err != nil {
			t.Fatalf("ClosestTo: %v", err)
		}
		if stats.Probes == 0 {
			t.Error("query issued no probes")
		}
		recRTT := topo.RTTMs(rec, target, 0)
		optRTT := math.Inf(1)
		for _, m := range members {
			if r := topo.RTTMs(m, target, 0); r < optRTT {
				optRTT = r
			}
		}
		if recRTT <= 2*optRTT+10 {
			goodCount++
		}
		n++
	}
	if frac := float64(goodCount) / float64(n); frac < 0.7 {
		t.Errorf("only %.0f%% of recommendations within 2x of optimal", frac*100)
	}
}

func TestClosestToBeatsRandomSelection(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	members := o.Members()
	entry := members[1]

	var recSum, randSum float64
	for i, target := range topo.Clients()[:50] {
		rec, _, err := o.ClosestTo(entry, target, 0)
		if err != nil {
			t.Fatal(err)
		}
		recSum += topo.RTTMs(rec, target, 0)
		randSum += topo.RTTMs(members[(i*13)%len(members)], target, 0)
	}
	if recSum >= randSum {
		t.Errorf("meridian (avg %.1f) no better than random (avg %.1f)",
			recSum/50, randSum/50)
	}
}

func TestClosestToErrors(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	if _, _, err := o.ClosestTo(netsim.HostID(-1), topo.Clients()[0], 0); err == nil {
		t.Error("non-member entry should fail")
	}
	if _, _, err := o.ClosestTo(o.Members()[0], netsim.HostID(1<<30), 0); err == nil {
		t.Error("unknown target should fail")
	}
}

func TestSelfishNodesAnswerThemselves(t *testing.T) {
	topo := testTopology(t)
	o, err := Build(Config{
		Topo: topo, Members: topo.Candidates(), Seed: 1,
		SelfishFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var selfish netsim.HostID = -1
	for _, id := range o.Members() {
		if h, _ := o.Health(id); h.Selfish {
			selfish = id
			break
		}
	}
	if selfish < 0 {
		t.Fatal("no selfish node assigned")
	}
	for _, target := range topo.Clients()[:5] {
		rec, _, err := o.ClosestTo(selfish, target, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rec != selfish {
			t.Errorf("selfish entry recommended %d, want itself (%d)", rec, selfish)
		}
	}
}

func TestDeadNodesKnowNobody(t *testing.T) {
	topo := testTopology(t)
	o, err := Build(Config{
		Topo: topo, Members: topo.Candidates(), Seed: 1,
		DeadFraction: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var dead netsim.HostID = -1
	for _, id := range o.Members() {
		if h, _ := o.Health(id); h.Dead {
			dead = id
			break
		}
	}
	if dead < 0 {
		t.Fatal("no dead node assigned")
	}
	rec, stats, err := o.ClosestTo(dead, topo.Clients()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec != dead || stats.Probes != 0 {
		t.Errorf("dead entry recommended %d with %d probes; want itself, 0 probes",
			rec, stats.Probes)
	}
}

func TestPartitionedPairOnlyKnowEachOther(t *testing.T) {
	topo := testTopology(t)
	o, err := Build(Config{
		Topo: topo, Members: topo.Candidates(), Seed: 1,
		PartitionPairs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var part netsim.HostID = -1
	for _, id := range o.Members() {
		if h, _ := o.Health(id); h.Partitioned {
			part = id
			break
		}
	}
	if part < 0 {
		t.Fatal("no partitioned node assigned")
	}
	n := o.nodes[part]
	if len(n.known) != 1 {
		t.Fatalf("partitioned node knows %d peers, want 1", len(n.known))
	}
	rec, _, err := o.ClosestTo(part, topo.Clients()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec != part && !n.known[rec] {
		t.Errorf("partitioned entry recommended %d, outside its site", rec)
	}
}

func TestBuildDeterministic(t *testing.T) {
	topo := testTopology(t)
	a := healthyOverlay(t, topo)
	b := healthyOverlay(t, topo)
	for _, id := range a.Members() {
		na, nb := a.nodes[id], b.nodes[id]
		for ri := range na.rings {
			if !equalIDs(na.rings[ri], nb.rings[ri]) {
				t.Fatalf("node %d ring %d differs across identical builds", id, ri)
			}
		}
	}
	// And queries agree.
	for _, target := range topo.Clients()[:10] {
		ra, _, _ := a.ClosestTo(a.Members()[0], target, 0)
		rb, _, _ := b.ClosestTo(b.Members()[0], target, 0)
		if ra != rb {
			t.Fatalf("query results differ: %d vs %d", ra, rb)
		}
	}
}

func TestHealthUnknownMember(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	if _, ok := o.Health(netsim.HostID(-1)); ok {
		t.Error("Health of non-member reported ok")
	}
}

func TestMembersSortedCopy(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	m := o.Members()
	if !sort.SliceIsSorted(m, func(i, j int) bool { return m[i] < m[j] }) {
		t.Error("Members not sorted")
	}
	m[0] = -99
	if o.Members()[0] == -99 {
		t.Error("Members exposes internal slice")
	}
}

func equalIDs(a, b []netsim.HostID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
