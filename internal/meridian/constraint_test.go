package meridian

import (
	"testing"

	"repro/internal/netsim"
)

func TestSatisfyConstraintsFindsValidMembers(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)

	// Two targets in the same region; a generous bound should be satisfiable.
	clients := topo.Clients()
	a := clients[0]
	var b netsim.HostID = -1
	for _, c := range clients[1:] {
		if topo.Host(c).Region == topo.Host(a).Region && c != a {
			b = c
			break
		}
	}
	if b < 0 {
		t.Skip("no same-region client pair")
	}
	constraints := []Constraint{
		{Target: a, BoundMs: 120},
		{Target: b, BoundMs: 120},
	}
	got, stats, err := o.SatisfyConstraints(o.Members()[0], constraints, 3, 0)
	if err != nil {
		t.Fatalf("SatisfyConstraints: %v", err)
	}
	if stats.Probes == 0 {
		t.Error("no probes issued")
	}
	if len(got) == 0 {
		t.Fatal("no members satisfied a generous constraint set")
	}
	// Verify the answers actually satisfy the constraints on true RTTs,
	// with headroom for measurement noise.
	for _, m := range got {
		for _, c := range constraints {
			if rtt := topo.RTTMs(m, c.Target, 0); rtt > c.BoundMs*1.15 {
				t.Errorf("member %d misses constraint: RTT to %d is %.1f ms (bound %.0f)",
					m, c.Target, rtt, c.BoundMs)
			}
		}
	}
}

func TestSatisfyConstraintsImpossibleBound(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	got, _, err := o.SatisfyConstraints(o.Members()[0], []Constraint{
		{Target: topo.Clients()[0], BoundMs: 0.0001},
	}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("impossible bound satisfied by %v", got)
	}
}

func TestSatisfyConstraintsValidation(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	entry := o.Members()[0]
	if _, _, err := o.SatisfyConstraints(-1, []Constraint{{Target: 0, BoundMs: 10}}, 1, 0); err == nil {
		t.Error("non-member entry should fail")
	}
	if _, _, err := o.SatisfyConstraints(entry, nil, 1, 0); err == nil {
		t.Error("no constraints should fail")
	}
	if _, _, err := o.SatisfyConstraints(entry, []Constraint{{Target: -9, BoundMs: 10}}, 1, 0); err == nil {
		t.Error("unknown target should fail")
	}
	if _, _, err := o.SatisfyConstraints(entry, []Constraint{{Target: 0, BoundMs: -1}}, 1, 0); err == nil {
		t.Error("negative bound should fail")
	}
}

func TestSatisfyConstraintsRespectsMax(t *testing.T) {
	topo := testTopology(t)
	o := healthyOverlay(t, topo)
	got, _, err := o.SatisfyConstraints(o.Members()[0], []Constraint{
		{Target: topo.Clients()[0], BoundMs: 500}, // trivially satisfiable
	}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 2 {
		t.Errorf("returned %d members, max was 2", len(got))
	}
}

func TestSatisfyConstraintsPathologicalEntry(t *testing.T) {
	topo := testTopology(t)
	o, err := Build(Config{
		Topo: topo, Members: topo.Candidates(), Seed: 1, SelfishFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var selfish netsim.HostID = -1
	for _, id := range o.Members() {
		if h, _ := o.Health(id); h.Selfish {
			selfish = id
			break
		}
	}
	if selfish < 0 {
		t.Fatal("no selfish node")
	}
	got, stats, err := o.SatisfyConstraints(selfish, []Constraint{
		{Target: topo.Clients()[0], BoundMs: 500},
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || stats.Probes != 0 {
		t.Errorf("pathological entry produced results: %v, %d probes", got, stats.Probes)
	}
}
