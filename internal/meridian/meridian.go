// Package meridian implements the Meridian closest-node service (Wong,
// Slivkins, Sirer — SIGCOMM 2005), the direct-measurement baseline the CRP
// paper compares against. Each overlay node keeps a small set of peers
// organized into concentric, non-overlapping latency rings, periodically
// polished for geographic diversity; node discovery uses an anti-entropy
// gossip push; and a closest-node query walks the overlay, at each hop
// probing the ring members whose distance brackets the current node's
// distance to the target and forwarding when a peer improves on it by the
// acceptance factor β.
//
// The package also injects the PlanetLab failure modes the paper reports
// dominating Meridian's error tail: freshly-bootstrapped nodes that
// recommend themselves for hours, nodes that never successfully join, and
// site-partitioned nodes that only know their co-located peer.
package meridian

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/netsim"
)

// Default Meridian parameters, following the SIGCOMM paper.
const (
	DefaultNumRings = 9
	DefaultRingBase = 2.0 // s: ring i spans (α·s^(i-1), α·s^i]
	DefaultAlphaMs  = 1.0 // α: radius of the innermost ring
	DefaultRingK    = 8   // primary members per ring
	DefaultBeta     = 0.5 // acceptance threshold

	DefaultGossipRounds = 12
	gossipSampleSize    = 6
)

// saltMeridian decorrelates Meridian's probes from other measurement
// subsystems in the simulator.
const saltMeridian uint64 = 0x6d65_7269

// Config parameterizes the overlay.
type Config struct {
	Topo    *netsim.Topology
	Members []netsim.HostID // overlay nodes (the paper's PlanetLab hosts)
	Seed    int64

	NumRings int
	RingBase float64
	AlphaMs  float64
	RingK    int
	Beta     float64

	GossipRounds int

	// Failure injection (fractions of Members):
	// SelfishFraction of nodes are stuck bootstrapping and answer every
	// query with themselves; DeadFraction never join the overlay (they know
	// nobody); PartitionPairs pairs of nodes only know each other.
	SelfishFraction float64
	DeadFraction    float64
	PartitionPairs  int
}

// node is one overlay member's state.
type node struct {
	id      netsim.HostID
	rings   [][]netsim.HostID // ring index → members
	known   map[netsim.HostID]bool
	selfish bool
	dead    bool
	// partnerOnly, when valid, is the only node this member knows
	// (site-partition pathology).
	partnerOnly netsim.HostID
}

// Overlay is a built Meridian deployment. Queries are safe for concurrent
// use once Build returns (the overlay is immutable afterwards).
type Overlay struct {
	cfg   Config
	topo  *netsim.Topology
	nodes map[netsim.HostID]*node
	order []netsim.HostID // deterministic iteration order
}

// QueryStats reports the work one closest-node query performed.
type QueryStats struct {
	Hops    int
	Probes  int
	Visited []netsim.HostID
}

// Build constructs the overlay: membership, failure assignment, gossip
// discovery and ring construction, deterministically in Config.Seed.
func Build(cfg Config) (*Overlay, error) {
	if cfg.Topo == nil {
		return nil, errors.New("meridian: Config.Topo is required")
	}
	if len(cfg.Members) == 0 {
		return nil, errors.New("meridian: no members")
	}
	if cfg.NumRings <= 0 {
		cfg.NumRings = DefaultNumRings
	}
	if cfg.RingBase <= 1 {
		cfg.RingBase = DefaultRingBase
	}
	if cfg.AlphaMs <= 0 {
		cfg.AlphaMs = DefaultAlphaMs
	}
	if cfg.RingK <= 0 {
		cfg.RingK = DefaultRingK
	}
	if cfg.Beta <= 0 || cfg.Beta >= 1 {
		cfg.Beta = DefaultBeta
	}
	if cfg.GossipRounds <= 0 {
		cfg.GossipRounds = DefaultGossipRounds
	}
	if cfg.SelfishFraction < 0 || cfg.SelfishFraction > 1 ||
		cfg.DeadFraction < 0 || cfg.DeadFraction > 1 {
		return nil, errors.New("meridian: failure fractions outside [0,1]")
	}
	for _, id := range cfg.Members {
		if cfg.Topo.Host(id) == nil {
			return nil, fmt.Errorf("meridian: unknown member host %d", id)
		}
	}

	o := &Overlay{
		cfg:   cfg,
		topo:  cfg.Topo,
		nodes: make(map[netsim.HostID]*node, len(cfg.Members)),
	}
	o.order = append(o.order, cfg.Members...)
	sort.Slice(o.order, func(i, j int) bool { return o.order[i] < o.order[j] })
	for _, id := range o.order {
		if _, dup := o.nodes[id]; dup {
			return nil, fmt.Errorf("meridian: duplicate member %d", id)
		}
		o.nodes[id] = &node{
			id:          id,
			rings:       make([][]netsim.HostID, cfg.NumRings+1),
			known:       make(map[netsim.HostID]bool),
			partnerOnly: -1,
		}
	}

	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x6d6572696469616e))
	o.assignFailures(rng)
	o.gossip(rng)
	o.buildRings()
	return o, nil
}

func (o *Overlay) assignFailures(rng *rand.Rand) {
	shuffled := append([]netsim.HostID(nil), o.order...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	nSelfish := int(math.Round(o.cfg.SelfishFraction * float64(len(shuffled))))
	nDead := int(math.Round(o.cfg.DeadFraction * float64(len(shuffled))))
	idx := 0
	for i := 0; i < nSelfish && idx < len(shuffled); i, idx = i+1, idx+1 {
		o.nodes[shuffled[idx]].selfish = true
	}
	for i := 0; i < nDead && idx < len(shuffled); i, idx = i+1, idx+1 {
		o.nodes[shuffled[idx]].dead = true
	}
	for i := 0; i < o.cfg.PartitionPairs && idx+1 < len(shuffled); i, idx = i+1, idx+2 {
		a, b := shuffled[idx], shuffled[idx+1]
		o.nodes[a].partnerOnly = b
		o.nodes[b].partnerOnly = a
	}
}

// gossip runs the anti-entropy push protocol: each round, every healthy node
// pushes a random sample of its known set to a random known peer. Nodes
// bootstrap knowing one seed node.
func (o *Overlay) gossip(rng *rand.Rand) {
	var healthy []netsim.HostID
	for _, id := range o.order {
		n := o.nodes[id]
		if n.dead || n.partnerOnly >= 0 {
			continue
		}
		healthy = append(healthy, id)
	}
	if len(healthy) == 0 {
		return
	}
	seed := healthy[0]
	for _, id := range healthy {
		if id != seed {
			o.nodes[id].known[seed] = true
			o.nodes[seed].known[id] = true // seed learns joiners, as a rendezvous would
		}
	}

	for round := 0; round < o.cfg.GossipRounds; round++ {
		for _, id := range healthy {
			n := o.nodes[id]
			if len(n.known) == 0 {
				continue
			}
			peer := pickRandomKnown(n, rng)
			// Push a sample of n's view (plus n itself) to peer.
			sample := sampleKnown(n, rng, gossipSampleSize)
			p := o.nodes[peer]
			if p == nil || p.dead {
				continue
			}
			for _, s := range append(sample, id) {
				if s != peer {
					p.known[s] = true
				}
			}
			// Anti-entropy: the peer answers with a sample of its own view.
			back := sampleKnown(p, rng, gossipSampleSize)
			for _, s := range back {
				if s != id {
					n.known[s] = true
				}
			}
		}
	}

	// Partitioned nodes know only their partner.
	for _, id := range o.order {
		n := o.nodes[id]
		if n.partnerOnly >= 0 {
			n.known = map[netsim.HostID]bool{n.partnerOnly: true}
		}
	}
}

func pickRandomKnown(n *node, rng *rand.Rand) netsim.HostID {
	ids := sortedKnown(n)
	return ids[rng.IntN(len(ids))]
}

func sampleKnown(n *node, rng *rand.Rand, k int) []netsim.HostID {
	ids := sortedKnown(n)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func sortedKnown(n *node) []netsim.HostID {
	ids := make([]netsim.HostID, 0, len(n.known))
	for id := range n.known {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// buildRings measures each node's known peers and installs them into
// latency rings, polishing oversubscribed rings for diversity.
func (o *Overlay) buildRings() {
	for _, id := range o.order {
		n := o.nodes[id]
		for peer := range n.known {
			rtt := o.topo.MeasureRTTMs(id, peer, 0, saltMeridian)
			ring := o.ringIndex(rtt)
			n.rings[ring] = append(n.rings[ring], peer)
		}
		for ri := range n.rings {
			sort.Slice(n.rings[ri], func(i, j int) bool { return n.rings[ri][i] < n.rings[ri][j] })
			if len(n.rings[ri]) > o.cfg.RingK {
				n.rings[ri] = o.polishRing(n.rings[ri])
			}
		}
	}
}

// ringIndex maps an RTT to its ring: ring i spans (α·s^(i-1), α·s^i], with
// everything beyond the outermost bound folded into the last ring.
func (o *Overlay) ringIndex(rttMs float64) int {
	if rttMs <= o.cfg.AlphaMs {
		return 1
	}
	i := int(math.Ceil(math.Log(rttMs/o.cfg.AlphaMs) / math.Log(o.cfg.RingBase)))
	if i < 1 {
		i = 1
	}
	if i > o.cfg.NumRings {
		i = o.cfg.NumRings
	}
	return i
}

// polishRing reduces an oversubscribed ring to RingK members, greedily
// maximizing the sum of pairwise latencies among the selected members —
// the same diversity objective as Meridian's hypervolume maximization, in a
// cheaper surrogate form (the hypervolume of the polytope grows with the
// spread of its vertices).
func (o *Overlay) polishRing(members []netsim.HostID) []netsim.HostID {
	k := o.cfg.RingK
	if len(members) <= k {
		return members
	}
	selected := []netsim.HostID{members[0]}
	remaining := append([]netsim.HostID(nil), members[1:]...)
	for len(selected) < k && len(remaining) > 0 {
		bestIdx, bestGain := 0, -1.0
		for i, cand := range remaining {
			gain := 0.0
			for _, s := range selected {
				gain += o.topo.BaseRTTMs(cand, s)
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		selected = append(selected, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i] < selected[j] })
	return selected
}

// Members returns the overlay membership.
func (o *Overlay) Members() []netsim.HostID {
	return append([]netsim.HostID(nil), o.order...)
}

// NodeHealth describes a member's injected condition, for diagnostics.
type NodeHealth struct {
	Selfish     bool
	Dead        bool
	Partitioned bool
}

// Health reports the injected condition of a member.
func (o *Overlay) Health(id netsim.HostID) (NodeHealth, bool) {
	n, ok := o.nodes[id]
	if !ok {
		return NodeHealth{}, false
	}
	return NodeHealth{Selfish: n.selfish, Dead: n.dead, Partitioned: n.partnerOnly >= 0}, true
}

// ClosestTo answers a closest-node query: starting from the entry member,
// walk the overlay toward the member closest to target, probing ring
// members whose distances bracket the current node's distance. It returns
// the recommended member and query statistics.
func (o *Overlay) ClosestTo(entry, target netsim.HostID, at time.Duration) (netsim.HostID, QueryStats, error) {
	cur, ok := o.nodes[entry]
	if !ok {
		return 0, QueryStats{}, fmt.Errorf("meridian: entry %d is not an overlay member", entry)
	}
	if o.topo.Host(target) == nil {
		return 0, QueryStats{}, fmt.Errorf("meridian: unknown target host %d", target)
	}

	stats := QueryStats{Visited: []netsim.HostID{cur.id}}

	// The paper's observed pathologies: selfish or dead nodes answer with
	// themselves regardless of the target.
	if cur.selfish || cur.dead {
		return cur.id, stats, nil
	}

	measure := func(from, to netsim.HostID) float64 {
		stats.Probes++
		return o.topo.MeasureRTTMs(from, to, at, saltMeridian+uint64(stats.Probes))
	}

	d := measure(cur.id, target)
	bestID, bestD := cur.id, d
	visited := map[netsim.HostID]bool{cur.id: true}

	for {
		// Probe ring members with latency to cur within [(1-β)d, (1+β)d]:
		// only they can plausibly be closer to the target by factor β.
		lo, hi := (1-o.cfg.Beta)*d, (1+o.cfg.Beta)*d
		var candBest netsim.HostID = -1
		candD := math.Inf(1)
		for ri := 1; ri <= o.cfg.NumRings; ri++ {
			for _, peer := range cur.rings[ri] {
				if visited[peer] {
					continue
				}
				p := o.nodes[peer]
				if p == nil || p.dead {
					continue
				}
				ringDist := o.topo.MeasureRTTMs(cur.id, peer, at, saltMeridian)
				if ringDist < lo || ringDist > hi {
					continue
				}
				pd := measure(peer, target)
				if pd < candD {
					candBest, candD = peer, pd
				}
				if pd < bestD {
					bestID, bestD = peer, pd
				}
			}
		}
		// Forward only when the best candidate improves by the acceptance
		// factor β; otherwise this node's best answer stands.
		if candBest < 0 || candD > o.cfg.Beta*d {
			return bestID, stats, nil
		}
		next := o.nodes[candBest]
		if next.selfish {
			// A selfish next hop swallows the query and answers itself.
			stats.Hops++
			stats.Visited = append(stats.Visited, next.id)
			return next.id, stats, nil
		}
		cur, d = next, candD
		visited[cur.id] = true
		stats.Hops++
		stats.Visited = append(stats.Visited, cur.id)
	}
}
