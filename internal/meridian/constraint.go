package meridian

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/netsim"
)

// Multi-constraint queries, the Meridian system's second primitive: find
// overlay members whose latency to each of a set of targets is below a
// per-target bound. The CRP paper's §I motivates exactly this shape of
// query — online games placing a session host so that every participant
// stays within a real-time delay budget.

// Constraint bounds the latency from a sought member to one target host.
type Constraint struct {
	Target  netsim.HostID
	BoundMs float64
}

// SatisfyConstraints walks the overlay looking for members that satisfy
// every constraint, returning up to max of them (sorted by total slack,
// best first). The search mirrors the closest-node walk: each hop probes
// the ring members bracketing the current node's worst constraint violation
// and forwards to the peer that reduces it most.
func (o *Overlay) SatisfyConstraints(entry netsim.HostID, constraints []Constraint, max int, at time.Duration) ([]netsim.HostID, QueryStats, error) {
	cur, ok := o.nodes[entry]
	if !ok {
		return nil, QueryStats{}, fmt.Errorf("meridian: entry %d is not an overlay member", entry)
	}
	if len(constraints) == 0 {
		return nil, QueryStats{}, fmt.Errorf("meridian: no constraints")
	}
	if max <= 0 {
		max = 1
	}
	for _, c := range constraints {
		if o.topo.Host(c.Target) == nil {
			return nil, QueryStats{}, fmt.Errorf("meridian: unknown target host %d", c.Target)
		}
		if c.BoundMs <= 0 {
			return nil, QueryStats{}, fmt.Errorf("meridian: non-positive bound %v", c.BoundMs)
		}
	}

	stats := QueryStats{Visited: []netsim.HostID{cur.id}}
	if cur.selfish || cur.dead {
		// Pathological entries cannot run the search; they report nothing.
		return nil, stats, nil
	}

	measure := func(from, to netsim.HostID) float64 {
		stats.Probes++
		return o.topo.MeasureRTTMs(from, to, at, saltMeridian+uint64(stats.Probes))
	}

	// violation returns the summed constraint excess for a member (0 means
	// all constraints hold) and its total slack when satisfied.
	evaluate := func(member netsim.HostID) (violation, slack float64) {
		for _, c := range constraints {
			rtt := measure(member, c.Target)
			if rtt > c.BoundMs {
				violation += rtt - c.BoundMs
			} else {
				slack += c.BoundMs - rtt
			}
		}
		return violation, slack
	}

	type hit struct {
		id    netsim.HostID
		slack float64
	}
	var hits []hit
	seen := map[netsim.HostID]bool{}

	consider := func(member netsim.HostID) float64 {
		if seen[member] {
			return math.Inf(1)
		}
		seen[member] = true
		n := o.nodes[member]
		if n == nil || n.dead || n.selfish {
			return math.Inf(1)
		}
		violation, slack := evaluate(member)
		if violation == 0 {
			hits = append(hits, hit{member, slack})
		}
		return violation
	}

	curViolation := consider(cur.id)
	for hops := 0; len(hits) < max && hops < o.cfg.NumRings; hops++ {
		// Probe all of the current node's ring members; forward to the one
		// with the smallest remaining violation.
		bestNext, bestViolation := netsim.HostID(-1), curViolation
		for ri := 1; ri <= o.cfg.NumRings; ri++ {
			for _, peer := range cur.rings[ri] {
				if seen[peer] {
					continue
				}
				v := consider(peer)
				if v < bestViolation {
					bestNext, bestViolation = peer, v
				}
			}
		}
		if bestNext < 0 {
			break // no progress possible
		}
		cur = o.nodes[bestNext]
		curViolation = bestViolation
		stats.Hops++
		stats.Visited = append(stats.Visited, cur.id)
	}

	sort.Slice(hits, func(i, j int) bool {
		if hits[i].slack != hits[j].slack {
			return hits[i].slack > hits[j].slack
		}
		return hits[i].id < hits[j].id
	})
	if len(hits) > max {
		hits = hits[:max]
	}
	out := make([]netsim.HostID, len(hits))
	for i, h := range hits {
		out[i] = h.id
	}
	return out, stats, nil
}
