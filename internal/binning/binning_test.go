package binning

import (
	"testing"

	"repro/internal/netsim"
)

func testTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 100
	p.NumCandidates = 40
	p.NumReplicas = 30
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func measuredSystem(t *testing.T, topo *netsim.Topology) (*System, []netsim.HostID) {
	t.Helper()
	landmarks, err := ChooseLandmarks(topo, topo.Candidates(), 10)
	if err != nil {
		t.Fatal(err)
	}
	hosts := append(topo.Clients(), topo.Candidates()...)
	sys, err := Measure(Config{Topo: topo, Landmarks: landmarks}, hosts, 0)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	return sys, hosts
}

func TestChooseLandmarksSpread(t *testing.T) {
	topo := testTopology(t)
	landmarks, err := ChooseLandmarks(topo, topo.Candidates(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(landmarks) != 8 {
		t.Fatalf("chose %d landmarks, want 8", len(landmarks))
	}
	seen := map[netsim.HostID]bool{}
	for _, l := range landmarks {
		if seen[l] {
			t.Fatalf("landmark %d chosen twice", l)
		}
		seen[l] = true
	}
	// Greedy max-min should spread landmarks across regions.
	regions := map[string]bool{}
	for _, l := range landmarks {
		regions[topo.Host(l).Region] = true
	}
	if len(regions) < 3 {
		t.Errorf("landmarks span only %d regions", len(regions))
	}
}

func TestChooseLandmarksValidation(t *testing.T) {
	topo := testTopology(t)
	if _, err := ChooseLandmarks(nil, topo.Candidates(), 3); err == nil {
		t.Error("nil topo should fail")
	}
	if _, err := ChooseLandmarks(topo, topo.Candidates()[:2], 5); err == nil {
		t.Error("k > pool should fail")
	}
	if _, err := ChooseLandmarks(topo, topo.Candidates(), 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestMeasureValidation(t *testing.T) {
	topo := testTopology(t)
	if _, err := Measure(Config{Landmarks: topo.Candidates()[:3]}, topo.Clients(), 0); err == nil {
		t.Error("nil topo should fail")
	}
	if _, err := Measure(Config{Topo: topo, Landmarks: topo.Candidates()[:1]}, topo.Clients(), 0); err == nil {
		t.Error("one landmark should fail")
	}
	if _, err := Measure(Config{Topo: topo, Landmarks: []netsim.HostID{-1, 2}}, topo.Clients(), 0); err == nil {
		t.Error("unknown landmark should fail")
	}
	if _, err := Measure(Config{Topo: topo, Landmarks: topo.Candidates()[:3]}, []netsim.HostID{-1}, 0); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestBinsWellFormed(t *testing.T) {
	topo := testTopology(t)
	sys, hosts := measuredSystem(t, topo)
	for _, h := range hosts {
		bin, ok := sys.Bin(h)
		if !ok {
			t.Fatalf("host %d not measured", h)
		}
		if len(bin.Order) != 10 || len(bin.Levels) != 10 {
			t.Fatalf("bin shape: %+v", bin)
		}
		// Order is a permutation of 0..9.
		seen := map[int]bool{}
		for _, idx := range bin.Order {
			if idx < 0 || idx >= 10 || seen[idx] {
				t.Fatalf("order not a permutation: %v", bin.Order)
			}
			seen[idx] = true
		}
		for _, lv := range bin.Levels {
			if lv < 0 || lv > len(DefaultLevels) {
				t.Fatalf("level out of range: %v", bin.Levels)
			}
		}
	}
}

func TestSimilarityReflectsProximity(t *testing.T) {
	topo := testTopology(t)
	sys, _ := measuredSystem(t, topo)
	clients := topo.Clients()

	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < len(clients); i++ {
		for j := i + 1; j < len(clients); j++ {
			a, b := topo.Host(clients[i]), topo.Host(clients[j])
			sim, err := sys.Similarity(a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			if sim < 0 || sim > 1 {
				t.Fatalf("similarity %v out of range", sim)
			}
			switch {
			case a.Metro == b.Metro:
				sameSum += sim
				sameN++
			case a.Region != b.Region:
				crossSum += sim
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Fatal("degenerate sample")
	}
	if sameSum/float64(sameN) <= crossSum/float64(crossN) {
		t.Errorf("same-metro bin similarity %.3f not above cross-region %.3f",
			sameSum/float64(sameN), crossSum/float64(crossN))
	}
}

func TestSimilarityErrors(t *testing.T) {
	topo := testTopology(t)
	sys, hosts := measuredSystem(t, topo)
	if _, err := sys.Similarity(hosts[0], netsim.HostID(1<<30)); err == nil {
		t.Error("unmeasured host should fail")
	}
}

func TestSelectClosestBeatsRandom(t *testing.T) {
	topo := testTopology(t)
	sys, _ := measuredSystem(t, topo)
	candidates := topo.Candidates()

	var selSum, randSum float64
	clients := topo.Clients()[:50]
	for i, c := range clients {
		pick, err := sys.SelectClosest(c, candidates)
		if err != nil {
			t.Fatal(err)
		}
		selSum += topo.BaseRTTMs(c, pick)
		randSum += topo.BaseRTTMs(c, candidates[(i*11)%len(candidates)])
	}
	if selSum >= randSum {
		t.Errorf("binning selection (avg %.1f) no better than random (avg %.1f)",
			selSum/float64(len(clients)), randSum/float64(len(clients)))
	}
	if _, err := sys.SelectClosest(clients[0], nil); err == nil {
		t.Error("no candidates should fail")
	}
}

func TestClustersPartitionByBin(t *testing.T) {
	topo := testTopology(t)
	sys, hosts := measuredSystem(t, topo)
	clusters := sys.Clusters()

	total := 0
	seen := map[string]bool{}
	for _, c := range clusters {
		total += len(c.Members)
		for _, m := range c.Members {
			if seen[string(m)] {
				t.Fatalf("node %v in two clusters", m)
			}
			seen[string(m)] = true
		}
		// Same cluster ⇒ identical bins.
		first, _ := topo.HostByName(string(c.Members[0]))
		fb, _ := sys.Bin(first)
		for _, m := range c.Members[1:] {
			id, _ := topo.HostByName(string(m))
			mb, _ := sys.Bin(id)
			if !fb.Equal(mb) {
				t.Fatalf("cluster %v mixes bins", c.Center)
			}
		}
	}
	if total != len(hosts) {
		t.Errorf("clusters cover %d hosts, want %d", total, len(hosts))
	}
}

func TestProbeCount(t *testing.T) {
	topo := testTopology(t)
	sys, _ := measuredSystem(t, topo)
	if got := sys.ProbeCount(100); got != 1000 {
		t.Errorf("ProbeCount(100) = %d, want 1000 (10 landmarks)", got)
	}
}

func TestBinEqual(t *testing.T) {
	a := Bin{Order: []int{0, 1}, Levels: []int{0, 1}}
	if !a.Equal(Bin{Order: []int{0, 1}, Levels: []int{0, 1}}) {
		t.Error("identical bins not equal")
	}
	if a.Equal(Bin{Order: []int{1, 0}, Levels: []int{0, 1}}) {
		t.Error("different orders equal")
	}
	if a.Equal(Bin{Order: []int{0, 1}, Levels: []int{1, 1}}) {
		t.Error("different levels equal")
	}
	if a.Equal(Bin{Order: []int{0}, Levels: []int{0}}) {
		t.Error("different sizes equal")
	}
}
