// Package binning implements the landmark-binning scheme of Ratnasamy et
// al. ("Topologically-aware overlay construction and server selection",
// INFOCOM 2002) — the relative network positioning approach the CRP paper
// explicitly positions itself against (§II): CRP targets the same
// *relative* positioning problems "but without requiring landmark selection
// or additional measurements".
//
// In binning, every node probes a small fixed set of landmark hosts and
// derives a bin: the ordering of landmarks by increasing RTT, augmented
// with a coarse latency level per landmark. Nodes that fall into the same
// (or a similar) bin are taken to be topologically close. The measurement
// cost CRP eliminates is explicit here: every node issues one probe per
// landmark.
package binning

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/netsim"
)

// DefaultLevels are the latency boundaries (ms) of the level annotation;
// Ratnasamy et al. suggest a small number of coarse levels.
var DefaultLevels = []float64{100, 200}

// saltBinning decorrelates binning's probes from other measurement users.
const saltBinning uint64 = 0x62696e

// Bin is a node's landmark bin: the landmark indices ordered by increasing
// measured RTT, and the latency level of each landmark in that order.
type Bin struct {
	Order  []int
	Levels []int
}

// Equal reports whether two bins are identical — Ratnasamy's "same bin"
// relation used for binning nodes together.
func (b Bin) Equal(o Bin) bool {
	if len(b.Order) != len(o.Order) {
		return false
	}
	for i := range b.Order {
		if b.Order[i] != o.Order[i] || b.Levels[i] != o.Levels[i] {
			return false
		}
	}
	return true
}

// key returns a comparable map key for the bin.
func (b Bin) key() string {
	out := make([]byte, 0, 2*len(b.Order))
	for i := range b.Order {
		out = append(out, byte(b.Order[i]), byte(b.Levels[i]))
	}
	return string(out)
}

// Config parameterizes a binning deployment.
type Config struct {
	Topo *netsim.Topology
	// Landmarks are the landmark hosts every participant probes.
	Landmarks []netsim.HostID
	// Levels are the latency level boundaries in ms (DefaultLevels if nil).
	Levels []float64
}

// System holds the measured bins of a set of participants.
type System struct {
	cfg  Config
	bins map[netsim.HostID]Bin
}

// ChooseLandmarks greedily picks k well-spread landmarks from a pool using
// max-min base RTT — the landmark-placement step CRP does not need.
func ChooseLandmarks(topo *netsim.Topology, pool []netsim.HostID, k int) ([]netsim.HostID, error) {
	if topo == nil {
		return nil, errors.New("binning: nil topology")
	}
	if k <= 0 || k > len(pool) {
		return nil, fmt.Errorf("binning: cannot choose %d landmarks from a pool of %d", k, len(pool))
	}
	chosen := []netsim.HostID{pool[0]}
	for len(chosen) < k {
		bestID, bestMin := netsim.HostID(-1), -1.0
		for _, cand := range pool {
			taken := false
			minD := -1.0
			for _, c := range chosen {
				if c == cand {
					taken = true
					break
				}
				if d := topo.BaseRTTMs(cand, c); minD < 0 || d < minD {
					minD = d
				}
			}
			if taken {
				continue
			}
			if minD > bestMin {
				bestID, bestMin = cand, minD
			}
		}
		if bestID < 0 {
			break
		}
		chosen = append(chosen, bestID)
	}
	return chosen, nil
}

// Measure probes every landmark from every host at virtual time at and
// computes the hosts' bins.
func Measure(cfg Config, hosts []netsim.HostID, at time.Duration) (*System, error) {
	if cfg.Topo == nil {
		return nil, errors.New("binning: Config.Topo is required")
	}
	if len(cfg.Landmarks) < 2 {
		return nil, errors.New("binning: need at least two landmarks")
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = DefaultLevels
	}
	for _, l := range cfg.Landmarks {
		if cfg.Topo.Host(l) == nil {
			return nil, fmt.Errorf("binning: unknown landmark %d", l)
		}
	}
	s := &System{cfg: cfg, bins: make(map[netsim.HostID]Bin, len(hosts))}
	for _, h := range hosts {
		if cfg.Topo.Host(h) == nil {
			return nil, fmt.Errorf("binning: unknown host %d", h)
		}
		type lm struct {
			idx int
			rtt float64
		}
		ms := make([]lm, len(cfg.Landmarks))
		for i, l := range cfg.Landmarks {
			ms[i] = lm{i, cfg.Topo.MeasureRTTMs(h, l, at, saltBinning+uint64(i))}
		}
		sort.Slice(ms, func(a, b int) bool {
			if ms[a].rtt != ms[b].rtt {
				return ms[a].rtt < ms[b].rtt
			}
			return ms[a].idx < ms[b].idx
		})
		bin := Bin{Order: make([]int, len(ms)), Levels: make([]int, len(ms))}
		for i, m := range ms {
			bin.Order[i] = m.idx
			bin.Levels[i] = level(m.rtt, cfg.Levels)
		}
		s.bins[h] = bin
	}
	return s, nil
}

// level maps an RTT to its latency level index.
func level(rtt float64, bounds []float64) int {
	for i, b := range bounds {
		if rtt < b {
			return i
		}
	}
	return len(bounds)
}

// Bin returns a host's bin.
func (s *System) Bin(h netsim.HostID) (Bin, bool) {
	b, ok := s.bins[h]
	return b, ok
}

// Similarity scores how alike two hosts' bins are, on [0, 1]: the common
// prefix of the landmark orderings (the primary signal in Ratnasamy et al.)
// plus a secondary credit for agreeing latency levels.
func (s *System) Similarity(a, b netsim.HostID) (float64, error) {
	ba, ok := s.bins[a]
	if !ok {
		return 0, fmt.Errorf("binning: host %d not measured", a)
	}
	bb, ok := s.bins[b]
	if !ok {
		return 0, fmt.Errorf("binning: host %d not measured", b)
	}
	m := len(ba.Order)
	prefix := 0
	for prefix < m && ba.Order[prefix] == bb.Order[prefix] {
		prefix++
	}
	levelAgree := 0
	for i := 0; i < m; i++ {
		if ba.Levels[i] == bb.Levels[i] {
			levelAgree++
		}
	}
	return 0.8*float64(prefix)/float64(m) + 0.2*float64(levelAgree)/float64(m), nil
}

// SelectClosest returns the candidate whose bin is most similar to the
// client's, ties broken by host ID for determinism.
func (s *System) SelectClosest(client netsim.HostID, candidates []netsim.HostID) (netsim.HostID, error) {
	if len(candidates) == 0 {
		return 0, errors.New("binning: no candidates")
	}
	best, bestSim := netsim.HostID(-1), -1.0
	for _, c := range candidates {
		sim, err := s.Similarity(client, c)
		if err != nil {
			return 0, err
		}
		if sim > bestSim || (sim == bestSim && c < best) {
			best, bestSim = c, sim
		}
	}
	return best, nil
}

// Clusters groups the measured hosts by identical bin — the binning paper's
// clustering rule — returning crp.Cluster values (node IDs are host names)
// for uniform quality evaluation. The center of each bin group is its
// lowest-ID member.
func (s *System) Clusters() []crp.Cluster {
	groups := make(map[string][]netsim.HostID)
	for h := range s.bins {
		k := s.bins[h].key()
		groups[k] = append(groups[k], h)
	}
	name := func(id netsim.HostID) crp.NodeID {
		return crp.NodeID(s.cfg.Topo.Host(id).Name)
	}
	out := make([]crp.Cluster, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		c := crp.Cluster{Center: name(members[0])}
		for _, m := range members {
			c.Members = append(c.Members, name(m))
		}
		sort.Slice(c.Members, func(i, j int) bool { return c.Members[i] < c.Members[j] })
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Center < out[j].Center
	})
	return out
}

// ProbeCount returns the number of direct measurements a deployment of n
// participants costs — the overhead CRP's measurement reuse avoids.
func (s *System) ProbeCount(n int) int {
	return n * len(s.cfg.Landmarks)
}
