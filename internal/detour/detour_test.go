package detour

import (
	"testing"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/netsim"
)

func testWorld(t *testing.T) (*netsim.Topology, *cdn.Network) {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 100
	p.NumCandidates = 10
	p.NumReplicas = 150
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		t.Fatalf("cdn.New: %v", err)
	}
	return topo, network
}

func collectMaps(t *testing.T, topo *netsim.Topology, network *cdn.Network, hosts []netsim.HostID) map[netsim.HostID]crp.RatioMap {
	t.Helper()
	epoch := time.Now()
	out := make(map[netsim.HostID]crp.RatioMap, len(hosts))
	for _, h := range hosts {
		tr := crp.NewTracker()
		for i := 0; i < 20; i++ {
			at := time.Duration(i) * 10 * time.Minute
			for _, name := range network.Names() {
				replicas, err := network.Redirect(name, h, at)
				if err != nil {
					t.Fatal(err)
				}
				ids := make([]crp.ReplicaID, len(replicas))
				for j, r := range replicas {
					ids[j] = crp.ReplicaID(topo.Host(r).Name)
				}
				tr.Observe(epoch.Add(at), ids...)
			}
		}
		out[h] = tr.RatioMap()
	}
	return out
}

func testFinder(t *testing.T, topo *netsim.Topology) *Finder {
	t.Helper()
	f, err := NewFinder(&TopoEvaluator{Topo: topo, At: 0}, func(r crp.ReplicaID) (netsim.HostID, bool) {
		return topo.HostByName(string(r))
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFinderValidation(t *testing.T) {
	topo, _ := testWorld(t)
	if _, err := NewFinder(nil, func(crp.ReplicaID) (netsim.HostID, bool) { return 0, false }); err == nil {
		t.Error("nil evaluator should fail")
	}
	if _, err := NewFinder(&TopoEvaluator{Topo: topo}, nil); err == nil {
		t.Error("nil resolver should fail")
	}
}

func TestSharedRelays(t *testing.T) {
	a := crp.RatioMap{"r1": 0.5, "r2": 0.3, "r3": 0.2}
	b := crp.RatioMap{"r2": 0.7, "r3": 0.2, "r4": 0.1}
	got := SharedRelays(a, b)
	if len(got) != 2 || got[0] != "r2" || got[1] != "r3" {
		t.Errorf("SharedRelays = %v, want [r2 r3]", got)
	}
	if got := SharedRelays(a, crp.RatioMap{"rz": 1}); got != nil {
		t.Errorf("disjoint SharedRelays = %v", got)
	}
}

func TestBestPicksLowestRelayedPath(t *testing.T) {
	topo, network := testWorld(t)
	clients := topo.Clients()
	maps := collectMaps(t, topo, network, clients[:30])
	f := testFinder(t, topo)

	checked := 0
	for i := 0; i < 30 && checked < 10; i++ {
		for j := i + 1; j < 30 && checked < 10; j++ {
			a, b := clients[i], clients[j]
			route, found, err := f.Best(a, b, maps[a], maps[b])
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				continue
			}
			checked++
			// The chosen relay must be optimal among the shared set.
			for _, rid := range SharedRelays(maps[a], maps[b]) {
				relay, ok := topo.HostByName(string(rid))
				if !ok {
					continue
				}
				d := topo.RTTMs(a, relay, 0) + topo.RTTMs(relay, b, 0)
				if d < route.RelayedMs-1e-9 {
					t.Fatalf("relay %v (%.1f ms) beats chosen %v (%.1f ms)",
						rid, d, route.Via, route.RelayedMs)
				}
			}
			if route.SavingMs != route.DirectMs-route.RelayedMs {
				t.Fatalf("inconsistent saving: %+v", route)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pair shared a relay")
	}
}

func TestBestNoSharedRelays(t *testing.T) {
	topo, _ := testWorld(t)
	f := testFinder(t, topo)
	_, found, err := f.Best(topo.Clients()[0], topo.Clients()[1],
		crp.RatioMap{"x": 1}, crp.RatioMap{"y": 1})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("found a detour with no shared relays")
	}
}

func TestSurveyFindsWins(t *testing.T) {
	topo, network := testWorld(t)
	hosts := topo.Clients()[:40]
	maps := collectMaps(t, topo, network, hosts)
	f := testFinder(t, topo)

	wins, frac, err := f.Survey(hosts, maps)
	if err != nil {
		t.Fatal(err)
	}
	// The prior work reports ~50% of pairs improved; our AS-penalty tail
	// should produce a healthy win fraction.
	if frac < 0.05 {
		t.Errorf("only %.0f%% of pairs improved by detouring", frac*100)
	}
	for i, w := range wins {
		if w.Route.SavingMs <= 0 {
			t.Fatalf("non-winning route in results: %+v", w)
		}
		if i > 0 && wins[i-1].Route.SavingMs < w.Route.SavingMs {
			t.Fatal("wins not sorted by saving")
		}
	}
}

func TestSurveyMissingMap(t *testing.T) {
	topo, _ := testWorld(t)
	f := testFinder(t, topo)
	_, _, err := f.Survey(topo.Clients()[:2], map[netsim.HostID]crp.RatioMap{})
	if err == nil {
		t.Error("missing ratio map should fail")
	}
}
