// Package detour discovers one-hop detour routes between hosts using the
// CDN replica servers both endpoints are redirected to — the technique of
// the CRP authors' prior work ("Drafting behind Akamai", SIGCOMM 2006) that
// the paper's introduction builds on. Inter-domain routing leaves latency
// on the table; a replica server the CDN considers close to *both*
// endpoints is a promising relay, found with zero active probing.
package detour

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/netsim"
)

// PathEvaluator measures candidate paths. Implementations may use live
// measurements or, in experiments, the simulator's latency model.
type PathEvaluator interface {
	// DirectMs returns the latency of the direct path a→b.
	DirectMs(a, b netsim.HostID) float64
	// RelayedMs returns the latency of the one-hop path a→relay→b.
	RelayedMs(a, relay, b netsim.HostID) float64
}

// TopoEvaluator evaluates paths on a simulated topology at a fixed virtual
// time.
type TopoEvaluator struct {
	Topo *netsim.Topology
	At   time.Duration
}

var _ PathEvaluator = (*TopoEvaluator)(nil)

// DirectMs implements PathEvaluator.
func (e *TopoEvaluator) DirectMs(a, b netsim.HostID) float64 {
	return e.Topo.RTTMs(a, b, e.At)
}

// RelayedMs implements PathEvaluator.
func (e *TopoEvaluator) RelayedMs(a, relay, b netsim.HostID) float64 {
	return e.Topo.RTTMs(a, relay, e.At) + e.Topo.RTTMs(relay, b, e.At)
}

// Resolver maps a replica identity from a ratio map back to a host.
type Resolver func(crp.ReplicaID) (netsim.HostID, bool)

// Route is a discovered one-hop detour.
type Route struct {
	Via crp.ReplicaID
	// DirectMs and RelayedMs are the measured path latencies; SavingMs is
	// their difference (positive when the detour wins).
	DirectMs  float64
	RelayedMs float64
	SavingMs  float64
}

// Finder discovers detours from redirection ratio maps.
type Finder struct {
	eval    PathEvaluator
	resolve Resolver
}

// NewFinder builds a Finder.
func NewFinder(eval PathEvaluator, resolve Resolver) (*Finder, error) {
	if eval == nil {
		return nil, errors.New("detour: nil PathEvaluator")
	}
	if resolve == nil {
		return nil, errors.New("detour: nil Resolver")
	}
	return &Finder{eval: eval, resolve: resolve}, nil
}

// SharedRelays returns the replica servers present in both ratio maps — the
// zero-probing relay candidate set.
func SharedRelays(a, b crp.RatioMap) []crp.ReplicaID {
	var out []crp.ReplicaID
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	for _, r := range small.Replicas() {
		if _, ok := large[r]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Best evaluates every shared relay between two hosts and returns the best
// detour route, or ok=false when the maps share no usable relay. The
// returned route may still have a negative saving — the caller decides
// whether to take the detour.
func (f *Finder) Best(a, b netsim.HostID, mapA, mapB crp.RatioMap) (Route, bool, error) {
	shared := SharedRelays(mapA, mapB)
	if len(shared) == 0 {
		return Route{}, false, nil
	}
	direct := f.eval.DirectMs(a, b)
	best := Route{DirectMs: direct}
	found := false
	for _, rid := range shared {
		relay, ok := f.resolve(rid)
		if !ok {
			continue
		}
		relayed := f.eval.RelayedMs(a, relay, b)
		if !found || relayed < best.RelayedMs {
			best.Via = rid
			best.RelayedMs = relayed
			found = true
		}
	}
	if !found {
		return Route{}, false, nil
	}
	best.SavingMs = best.DirectMs - best.RelayedMs
	return best, true, nil
}

// Survey evaluates the best detour for every pair in hosts (with maps keyed
// by host) and returns the routes that improve on the direct path, sorted
// by saving (largest first), plus the fraction of evaluated pairs improved.
func (f *Finder) Survey(hosts []netsim.HostID, maps map[netsim.HostID]crp.RatioMap) ([]PairRoute, float64, error) {
	var wins []PairRoute
	evaluated := 0
	for i := 0; i < len(hosts); i++ {
		for j := i + 1; j < len(hosts); j++ {
			a, b := hosts[i], hosts[j]
			ma, ok := maps[a]
			if !ok {
				return nil, 0, fmt.Errorf("detour: no ratio map for host %d", a)
			}
			mb, ok := maps[b]
			if !ok {
				return nil, 0, fmt.Errorf("detour: no ratio map for host %d", b)
			}
			route, found, err := f.Best(a, b, ma, mb)
			if err != nil {
				return nil, 0, err
			}
			if !found {
				continue
			}
			evaluated++
			if route.SavingMs > 0 {
				wins = append(wins, PairRoute{A: a, B: b, Route: route})
			}
		}
	}
	sort.Slice(wins, func(i, j int) bool {
		if wins[i].Route.SavingMs != wins[j].Route.SavingMs {
			return wins[i].Route.SavingMs > wins[j].Route.SavingMs
		}
		if wins[i].A != wins[j].A {
			return wins[i].A < wins[j].A
		}
		return wins[i].B < wins[j].B
	})
	frac := 0.0
	if evaluated > 0 {
		frac = float64(len(wins)) / float64(evaluated)
	}
	return wins, frac, nil
}

// PairRoute is a winning detour for one host pair.
type PairRoute struct {
	A, B  netsim.HostID
	Route Route
}
