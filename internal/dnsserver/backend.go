// Package dnsserver serves the simulated CDN's zone over real UDP sockets
// using the dnswire codec, and provides the stub client and the in-process
// recursive-resolution model used by the King measurement technique.
//
// The same authoritative logic (CDNBackend) backs both the wire path — used
// by cmd/dnsprobe, the quickstart example and integration tests — and the
// fast in-process path used by large experiments, so both observe identical
// redirection behaviour.
package dnsserver

import (
	"strings"
	"time"

	"repro/internal/cdn"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// Backend answers DNS questions on behalf of a client identified by its
// LDNS host. Implementations must be safe for concurrent use.
type Backend interface {
	// Answer resolves q for the client behind ldns (netsim.HostID(-1) for
	// unknown clients) and returns the answer records and response code.
	Answer(q dnswire.Question, ldns netsim.HostID) ([]dnswire.Record, dnswire.RCode)
}

// UnknownLDNS marks a query whose source the server cannot attribute to a
// simulated resolver.
const UnknownLDNS = netsim.HostID(-1)

// zoneSuffix is the apex of the simulated namespace.
const zoneSuffix = "sim."

// hostRecordTTL is the TTL for static host A records.
const hostRecordTTL = 3600

// CDNBackend is the authoritative server logic for the "sim." zone: it
// answers CDN-accelerated names with the mapping system's current
// redirections, and plain host names with their static addresses.
type CDNBackend struct {
	Topo  *netsim.Topology
	CDN   *cdn.Network
	Clock *netsim.Clock
}

var _ Backend = (*CDNBackend)(nil)

// Answer implements Backend.
func (b *CDNBackend) Answer(q dnswire.Question, ldns netsim.HostID) ([]dnswire.Record, dnswire.RCode) {
	if q.Class != dnswire.ClassIN {
		return nil, dnswire.RCodeNotImp
	}
	name := strings.ToLower(q.Name)
	if !strings.HasSuffix(name, "."+zoneSuffix) && name != zoneSuffix {
		return nil, dnswire.RCodeRefused
	}

	switch q.Type {
	case dnswire.TypeSOA:
		if name == zoneSuffix {
			return []dnswire.Record{b.soa()}, dnswire.RCodeNoError
		}
	case dnswire.TypeNS:
		if name == zoneSuffix {
			return []dnswire.Record{{
				Name: zoneSuffix, Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: 300,
				Data: &dnswire.NSRecord{Host: "ns1." + zoneSuffix},
			}}, dnswire.RCodeNoError
		}
	case dnswire.TypeA:
		return b.answerA(q.Name, name, ldns)
	}
	// Name exists but no data of the requested type, or an empty non-apex
	// answer: report NODATA/NXDOMAIN accordingly.
	if b.nameExists(name) {
		return nil, dnswire.RCodeNoError
	}
	return nil, dnswire.RCodeNXDomain
}

func (b *CDNBackend) answerA(origName, name string, ldns netsim.HostID) ([]dnswire.Record, dnswire.RCode) {
	// CDN-accelerated name: consult the mapping system.
	if b.isCDNName(name) {
		at := b.Clock.Now()
		replicas, err := b.CDN.Redirect(name, ldns, at)
		if err != nil {
			// Unknown LDNS: serve the global default set, as a real CDN does
			// for resolvers it cannot localize.
			replicas, err = b.CDN.FallbackSet(name)
			if err != nil {
				return nil, dnswire.RCodeServFail
			}
		}
		ttl := uint32(b.CDN.TTL() / time.Second)
		recs := make([]dnswire.Record, 0, len(replicas))
		for _, id := range replicas {
			h := b.Topo.Host(id)
			if h == nil {
				return nil, dnswire.RCodeServFail
			}
			recs = append(recs, dnswire.Record{
				Name: origName, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: ttl,
				Data: &dnswire.ARecord{Addr: h.Addr},
			})
		}
		return recs, dnswire.RCodeNoError
	}

	// Static host name.
	if id, ok := b.Topo.HostByName(name); ok {
		return []dnswire.Record{{
			Name: origName, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: hostRecordTTL,
			Data: &dnswire.ARecord{Addr: b.Topo.Host(id).Addr},
		}}, dnswire.RCodeNoError
	}
	if name == zoneSuffix {
		return nil, dnswire.RCodeNoError // apex exists, no A data
	}
	return nil, dnswire.RCodeNXDomain
}

func (b *CDNBackend) isCDNName(name string) bool {
	for _, n := range b.CDN.Names() {
		if dnswire.EqualNames(n, name) {
			return true
		}
	}
	return false
}

func (b *CDNBackend) nameExists(name string) bool {
	if name == zoneSuffix || b.isCDNName(name) {
		return true
	}
	_, ok := b.Topo.HostByName(name)
	return ok
}

func (b *CDNBackend) soa() dnswire.Record {
	return dnswire.Record{
		Name: zoneSuffix, Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.SOARecord{
			MName: "ns1." + zoneSuffix, RName: "ops." + zoneSuffix,
			Serial: 1, Refresh: 7200, Retry: 600, Expire: 86400, Minimum: 60,
		},
	}
}
