package dnsserver

import (
	"testing"
	"time"

	"repro/internal/dnswire"
)

// TestCacheExpiryBoundaryExact pins the TTL boundary semantics on the
// virtual clock: an entry cached at t with TTL n seconds serves hits while
// now < t+n and expires at exactly now == t+n — not one instant later.
// RFC 1035 TTLs count whole seconds of validity; at the deadline the
// record's lifetime is spent. The CDN's 20 s TTLs make this the boundary
// the whole probing model sits on: a cache that held entries one instant
// past the deadline would replay stale redirections into ratio maps.
func TestCacheExpiryBoundaryExact(t *testing.T) {
	const ttl = 20
	f := &fakeQuerier{ttl: ttl}
	clock := &virtualClock{t: time.Unix(1000, 0)}
	c := newCached(t, f, clock)

	if _, cached, err := c.Query("edge.cdn.sim.", dnswire.TypeA); err != nil || cached {
		t.Fatalf("first query: cached=%v err=%v", cached, err)
	}
	deadline := time.Unix(1000, 0).Add(ttl * time.Second)

	// One nanosecond before the deadline: still a hit.
	clock.t = deadline.Add(-time.Nanosecond)
	if _, cached, err := c.Query("edge.cdn.sim.", dnswire.TypeA); err != nil || !cached {
		t.Fatalf("query at deadline-1ns: cached=%v err=%v, want hit", cached, err)
	}

	// Exactly at the deadline: expired. now.Before(expires) is false when
	// now == expires, so t == deadline must miss, not just t > deadline.
	clock.t = deadline
	if _, cached, err := c.Query("edge.cdn.sim.", dnswire.TypeA); err != nil || cached {
		t.Fatalf("query at t==deadline: cached=%v err=%v, want miss", cached, err)
	}
	if f.calls != 2 {
		t.Fatalf("backend calls = %d, want 2 (initial fill + boundary refill)", f.calls)
	}

	// The boundary miss refilled the cache: the deadline advances by a full
	// TTL from the refill instant.
	clock.t = deadline.Add(ttl*time.Second - time.Nanosecond)
	if _, cached, err := c.Query("edge.cdn.sim.", dnswire.TypeA); err != nil || !cached {
		t.Fatalf("query inside refilled window: cached=%v err=%v, want hit", cached, err)
	}
	clock.t = deadline.Add(ttl * time.Second)
	if _, cached, err := c.Query("edge.cdn.sim.", dnswire.TypeA); err != nil || cached {
		t.Fatalf("query at refilled deadline: cached=%v err=%v, want miss", cached, err)
	}
}

// TestCacheExpiryBoundaryOneSecondTTL covers the minimum cacheable TTL: a
// 1 s record is a hit during its single second and expired at t0+1s sharp.
func TestCacheExpiryBoundaryOneSecondTTL(t *testing.T) {
	f := &fakeQuerier{ttl: 1}
	base := time.Unix(500, 0)
	clock := &virtualClock{t: base}
	c := newCached(t, f, clock)

	if _, cached, _ := c.Query("short.cdn.sim.", dnswire.TypeA); cached {
		t.Fatal("first query must miss")
	}
	for _, tc := range []struct {
		offset time.Duration
		hit    bool
	}{
		{0, true},
		{999 * time.Millisecond, true},
		{time.Second - time.Nanosecond, true},
		{time.Second, false},
	} {
		clock.t = base.Add(tc.offset)
		_, cached, err := c.Query("short.cdn.sim.", dnswire.TypeA)
		if err != nil {
			t.Fatalf("offset %v: %v", tc.offset, err)
		}
		if cached != tc.hit {
			t.Fatalf("offset %v: cached=%v, want %v", tc.offset, cached, tc.hit)
		}
		if !tc.hit {
			break // the miss refilled the cache; later offsets would hit again
		}
	}
	if hits, misses := c.Stats(); hits != 3 || misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 3/2", hits, misses)
	}
}

// TestCacheEvictionAtExpiryBoundary pins the same t==deadline semantics in
// the eviction path: when the cache is full, an entry whose deadline is
// exactly now counts as expired and is dropped in favour of the incumbent.
func TestCacheEvictionAtExpiryBoundary(t *testing.T) {
	f := &fakeQuerier{ttl: 30}
	base := time.Unix(2000, 0)
	clock := &virtualClock{t: base}
	c := newCached(t, f, clock, WithCacheSize(1))

	if _, _, err := c.Query("a.cdn.sim.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// Exactly at a.'s deadline, inserting b. must evict the expired a.
	// rather than an arbitrary live entry.
	clock.t = base.Add(30 * time.Second)
	if _, _, err := c.Query("b.cdn.sim.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("cache holds %d entries, want 1", got)
	}
	// b. is the survivor: a hit for b., a miss (refill) for a.
	if _, cached, _ := c.Query("b.cdn.sim.", dnswire.TypeA); !cached {
		t.Fatal("b. should have survived eviction")
	}
	callsBefore := f.calls
	if _, cached, _ := c.Query("a.cdn.sim.", dnswire.TypeA); cached {
		t.Fatal("a. should have been evicted at its exact deadline")
	}
	if f.calls != callsBefore+1 {
		t.Fatalf("a. refill did not reach the backend (calls %d -> %d)", callsBefore, f.calls)
	}
}
