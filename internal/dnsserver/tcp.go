package dnsserver

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// TCPServer serves the same backend over DNS-over-TCP (RFC 1035 §4.2.2:
// each message is preceded by a 2-byte length). Clients fall back to it when
// a UDP response is truncated.
type TCPServer struct {
	l        net.Listener
	backend  Backend
	registry *Registry

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// tcpIdleTimeout bounds how long an idle TCP connection is kept open.
const tcpIdleTimeout = 30 * time.Second

// ServeTCP starts answering DNS-over-TCP queries on l. The server owns l
// after this call and closes it in Close.
func ServeTCP(l net.Listener, backend Backend, registry *Registry) (*TCPServer, error) {
	if l == nil {
		return nil, errors.New("dnsserver: nil Listener")
	}
	if backend == nil {
		return nil, errors.New("dnsserver: nil Backend")
	}
	s := &TCPServer{
		l:        l,
		backend:  backend,
		registry: registry,
		closed:   make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *TCPServer) Addr() net.Addr { return s.l.Addr() }

// Close stops the server, closes open connections and waits for handlers.
// Safe to call concurrently and repeatedly (same sync.Once pattern as
// Server.Close — a non-blocking <-s.closed check would let two concurrent
// callers both close the channel).
func (s *TCPServer) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.closeErr = s.l.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return s.closeErr
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		msg, err := readTCPMessage(conn)
		if err != nil {
			return
		}
		metrics.tcpQueries.Inc()
		// TCP responses are not truncated; the only practical bound is the
		// 16-bit length prefix.
		wire := buildResponse(s.backend, s.registry, msg, conn.RemoteAddr(), 0xFFFF, false)
		if wire == nil {
			return // garbage on a stream is fatal for the connection
		}
		if err := writeTCPMessage(conn, wire); err != nil {
			return
		}
	}
}

// readTCPMessage reads one length-prefixed DNS message.
func readTCPMessage(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if n == 0 {
		return nil, errors.New("dnsserver: zero-length TCP message")
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// writeTCPMessage writes one length-prefixed DNS message.
func writeTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return errors.New("dnsserver: TCP message exceeds 65535 bytes")
	}
	buf := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(buf, uint16(len(msg)))
	copy(buf[2:], msg)
	_, err := w.Write(buf)
	return err
}
