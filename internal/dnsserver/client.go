package dnsserver

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// Client is a stub DNS resolver speaking to one server over UDP. It owns a
// single socket, optionally registered as a simulated LDNS identity, and is
// safe for concurrent use (queries are serialized on the socket).
type Client struct {
	server   net.Addr
	registry *Registry

	mu          sync.Mutex
	pc          net.PacketConn
	rng         *rand.Rand
	timeout     time.Duration
	retries     int
	edns        uint16
	tcpFallback bool
	ldns        netsim.HostID
	closed      bool
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithTimeout sets the per-attempt timeout (default 2s).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetries sets the number of retransmissions after the first attempt
// (default 2).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithEDNS0 makes the client advertise an EDNS0 UDP buffer of the given
// size on every query, allowing responses beyond the classic 512 bytes.
func WithEDNS0(size uint16) ClientOption {
	return func(c *Client) { c.edns = size }
}

// WithTCPFallback controls whether truncated UDP responses are retried over
// DNS-over-TCP to the same server address (default true).
func WithTCPFallback(enabled bool) ClientOption {
	return func(c *Client) { c.tcpFallback = enabled }
}

// NewClient opens a stub resolver socket aimed at server. If registry is
// non-nil the socket is registered as the given simulated LDNS so the server
// can localize its answers. Close releases the socket.
func NewClient(server net.Addr, registry *Registry, ldns netsim.HostID, opts ...ClientOption) (*Client, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dnsserver: open client socket: %w", err)
	}
	c := &Client{
		server:      server,
		registry:    registry,
		pc:          pc,
		rng:         rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), uint64(ldns))),
		timeout:     2 * time.Second,
		retries:     2,
		tcpFallback: true,
		ldns:        ldns,
	}
	for _, opt := range opts {
		opt(c)
	}
	if registry != nil {
		registry.Register(pc.LocalAddr(), ldns)
	}
	return c, nil
}

// Close releases the client socket and its registry entry.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.registry != nil {
		c.registry.Unregister(c.pc.LocalAddr())
	}
	return c.pc.Close()
}

// ErrClientClosed is returned by Exchange after Close.
var ErrClientClosed = errors.New("dnsserver: client closed")

// Query builds and sends a single-question query and returns the response.
func (c *Client) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	msg := &dnswire.Message{
		Header: dnswire.Header{RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: name, Type: qtype, Class: dnswire.ClassIN},
		},
	}
	if c.edns > 0 {
		msg.SetEDNS0(c.edns)
	}
	return c.Exchange(msg)
}

// Exchange sends msg (assigning a fresh ID) and waits for the matching
// response, retransmitting on timeout.
func (c *Client) Exchange(msg *dnswire.Message) (*dnswire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	msg.ID = uint16(c.rng.Uint32())
	wire, err := msg.Pack()
	if err != nil {
		return nil, err
	}

	var lastErr error
	buf := make([]byte, 4096)
	for attempt := 0; attempt <= c.retries; attempt++ {
		if _, err := c.pc.WriteTo(wire, c.server); err != nil {
			return nil, fmt.Errorf("dnsserver: send query: %w", err)
		}
		deadline := time.Now().Add(c.timeout)
		if err := c.pc.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		for {
			n, _, err := c.pc.ReadFrom(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					lastErr = fmt.Errorf("dnsserver: query %q timed out (attempt %d)",
						msg.Questions[0].Name, attempt+1)
					break // retransmit
				}
				return nil, err
			}
			resp, err := dnswire.Unpack(buf[:n])
			if err != nil || !resp.Response || resp.ID != msg.ID {
				continue // stray or corrupt datagram; keep waiting
			}
			if resp.Truncated && c.tcpFallback {
				return c.exchangeTCPLocked(wire, msg.ID)
			}
			return resp, nil
		}
	}
	return nil, lastErr
}

// exchangeTCPLocked retries a truncated query over DNS-over-TCP against the
// same server address. Called with c.mu held.
func (c *Client) exchangeTCPLocked(wire []byte, id uint16) (*dnswire.Message, error) {
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.Dial("tcp", c.server.String())
	if err != nil {
		return nil, fmt.Errorf("dnsserver: tcp fallback dial: %w", err)
	}
	defer conn.Close()
	// Register the TCP socket's identity so the server can localize the
	// answer the same way it does for the UDP socket.
	if c.registry != nil {
		c.registry.Register(conn.LocalAddr(), c.ldns)
		defer c.registry.Unregister(conn.LocalAddr())
	}
	if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if err := writeTCPMessage(conn, wire); err != nil {
		return nil, fmt.Errorf("dnsserver: tcp fallback send: %w", err)
	}
	raw, err := readTCPMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: tcp fallback read: %w", err)
	}
	resp, err := dnswire.Unpack(raw)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: tcp fallback response: %w", err)
	}
	if !resp.Response || resp.ID != id {
		return nil, errors.New("dnsserver: tcp fallback response mismatch")
	}
	return resp, nil
}
