package dnsserver

import (
	"net"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/faults"
)

// TestClientRetransmitSurvivesReceiveLoss drops half the server's inbound
// datagrams (deterministically in the scenario seed) and asserts the
// client's retransmission schedule still completes the query. This is the
// paper's real substrate: DNS probing over lossy UDP, where a lost query
// costs a timeout, not the measurement.
func TestClientRetransmitSurvivesReceiveLoss(t *testing.T) {
	f := newFixture(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	plane, err := faults.New(f.topo, faults.Scenario{Seed: 17, Faults: []faults.Fault{
		{Kind: faults.PacketLoss, Rate: 0.5, Target: "dns"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	registry := NewRegistry()
	srv, err := Serve(plane.WrapPacketConn(pc, "dns"), f.backend, registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := NewClient(srv.Addr(), registry, f.topo.Clients()[0],
		WithTimeout(200*time.Millisecond), WithRetries(7))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// 7 retries at 50% per-packet loss: the deterministic drop pattern for
	// seed 17 lets a retransmit through well before the budget runs out.
	resp, err := client.Query(f.cdn.Names()[0], dnswire.TypeA)
	if err != nil {
		t.Fatalf("query through lossy path: %v", err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) == 0 {
		t.Fatalf("bad answer through lossy path: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
	if plane.Activations()[faults.PacketLoss] == 0 {
		t.Fatal("loss fault never fired: the test exercised nothing")
	}
}

// TestServerSurvivesDuplicatedAndReorderedTraffic runs queries through a
// conn that duplicates replies and reorders inbound datagrams; every query
// must still resolve (DNS IDs match retransmits to replies, so duplicates
// and reordering are absorbed).
func TestServerSurvivesDuplicatedAndReorderedTraffic(t *testing.T) {
	f := newFixture(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	plane, err := faults.New(f.topo, faults.Scenario{Seed: 23, Faults: []faults.Fault{
		{Kind: faults.PacketDup, Rate: 0.5, Target: "dns"},
		{Kind: faults.PacketReorder, Rate: 0.3, Target: "dns"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	registry := NewRegistry()
	srv, err := Serve(plane.WrapPacketConn(pc, "dns"), f.backend, registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := NewClient(srv.Addr(), registry, f.topo.Clients()[1],
		WithTimeout(time.Second), WithRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 10; i++ {
		resp, err := client.Query(f.cdn.Names()[i%2], dnswire.TypeA)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if resp.RCode != dnswire.RCodeNoError {
			t.Fatalf("query %d rcode = %v", i, resp.RCode)
		}
	}
	if plane.Activations()[faults.PacketDup] == 0 {
		t.Fatal("dup fault never fired over 10 queries")
	}
}
