package dnsserver

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dnswire"
)

// CachingClient wraps a DNS querier with an RFC 1035 TTL-honoring answer
// cache, the behaviour of a real stub/recursive resolver. It matters for
// CRP in both directions: a passive client observes post-cache traffic, and
// an active CRP client probing every ≥10 minutes always misses the CDN's
// 20-second TTLs — the reason the paper can bound CRP's added load on the
// CDN by the probe interval alone.
type CachingClient struct {
	querier Querier
	now     func() time.Time
	max     int

	mu    sync.Mutex
	cache map[cacheKey]cacheEntry

	hits, misses int
}

// Querier issues DNS queries; *Client implements it.
type Querier interface {
	Query(name string, qtype dnswire.Type) (*dnswire.Message, error)
}

var _ Querier = (*Client)(nil)

type cacheKey struct {
	name  string
	qtype dnswire.Type
}

type cacheEntry struct {
	wire    []byte // packed response; unpacked per hit so callers can't alias
	expires time.Time
}

// CacheOption customizes a CachingClient.
type CacheOption func(*CachingClient)

// WithCacheClock injects the time source (for virtual-time tests).
func WithCacheClock(now func() time.Time) CacheOption {
	return func(c *CachingClient) { c.now = now }
}

// WithCacheSize bounds the number of cached entries (default 4096).
func WithCacheSize(n int) CacheOption {
	return func(c *CachingClient) {
		if n > 0 {
			c.max = n
		}
	}
}

// NewCachingClient wraps q with a cache.
func NewCachingClient(q Querier, opts ...CacheOption) (*CachingClient, error) {
	if q == nil {
		return nil, errors.New("dnsserver: nil Querier")
	}
	c := &CachingClient{
		querier: q,
		now:     time.Now,
		max:     4096,
		cache:   make(map[cacheKey]cacheEntry),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Query resolves name/qtype, serving from cache while the answer's TTL
// allows. The returned message is private to the caller. cached reports
// whether the answer came from the cache.
func (c *CachingClient) Query(name string, qtype dnswire.Type) (msg *dnswire.Message, cached bool, err error) {
	key := cacheKey{name: strings.ToLower(name), qtype: qtype}
	now := c.now()

	c.mu.Lock()
	if e, ok := c.cache[key]; ok {
		if now.Before(e.expires) {
			c.hits++
			c.mu.Unlock()
			metrics.cacheHits.Inc()
			m, err := dnswire.Unpack(e.wire)
			if err != nil {
				return nil, false, fmt.Errorf("dnsserver: corrupt cache entry: %w", err)
			}
			return m, true, nil
		}
		delete(c.cache, key)
	}
	c.misses++
	c.mu.Unlock()
	metrics.cacheMisses.Inc()

	resp, err := c.querier.Query(name, qtype)
	if err != nil {
		return nil, false, err
	}
	if ttl, ok := cacheableTTL(resp); ok {
		wire, err := resp.Pack()
		if err == nil {
			c.mu.Lock()
			if len(c.cache) >= c.max {
				c.evictLocked()
			}
			c.cache[key] = cacheEntry{wire: wire, expires: now.Add(ttl)}
			c.mu.Unlock()
		}
	}
	return resp, false, nil
}

// cacheableTTL returns how long resp may be cached: the minimum answer TTL
// of a successful response. Errors, empty answers and zero TTLs are not
// cached (negative caching is deliberately out of scope). OPT pseudo-records
// are skipped wherever they appear — their TTL field carries extended
// rcode/flags, not a lifetime, and a leading OPT must not seed the minimum.
func cacheableTTL(resp *dnswire.Message) (time.Duration, bool) {
	if resp.RCode != dnswire.RCodeNoError {
		return 0, false
	}
	var minTTL uint32
	found := false
	for _, r := range resp.Answers {
		if r.Type == dnswire.TypeOPT {
			continue
		}
		if !found || r.TTL < minTTL {
			minTTL = r.TTL
			found = true
		}
	}
	if !found || minTTL == 0 {
		return 0, false
	}
	return time.Duration(minTTL) * time.Second, true
}

// evictLocked drops expired entries, and if none were expired, an arbitrary
// entry — a simple bound, not an LRU; the CRP workload never approaches it.
func (c *CachingClient) evictLocked() {
	now := c.now()
	dropped := false
	for k, e := range c.cache {
		if !now.Before(e.expires) {
			delete(c.cache, k)
			dropped = true
		}
	}
	if dropped {
		return
	}
	for k := range c.cache {
		delete(c.cache, k)
		return
	}
}

// Stats returns the cache's hit and miss counts.
func (c *CachingClient) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of live entries (expired entries may be counted
// until their next access).
func (c *CachingClient) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}
