package dnsserver

import (
	"errors"
	"net"
	"sync"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Package-wide instruments, registered in the default obs registry so one
// snapshot covers every server and cache in the process (there may be many
// in a simulation). All counters are monotone and race-free.
var metrics = struct {
	udpQueries  *obs.Counter
	tcpQueries  *obs.Counter
	truncations *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}{
	udpQueries:  obs.Default().Counter("dnsserver.queries.udp"),
	tcpQueries:  obs.Default().Counter("dnsserver.queries.tcp"),
	truncations: obs.Default().Counter("dnsserver.truncations"),
	cacheHits:   obs.Default().Counter("dnsserver.cache.hits"),
	cacheMisses: obs.Default().Counter("dnsserver.cache.misses"),
}

// Registry maps the source addresses of in-process stub resolvers to the
// simulated LDNS hosts they represent. A real CDN identifies the querying
// resolver by its source IP; since every simulated resolver shares this
// process, sockets register themselves instead.
type Registry struct {
	mu sync.RWMutex
	m  map[string]netsim.HostID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]netsim.HostID)}
}

// Register associates a socket address with a simulated LDNS host.
func (r *Registry) Register(addr net.Addr, id netsim.HostID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[addr.String()] = id
}

// Unregister removes an association.
func (r *Registry) Unregister(addr net.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, addr.String())
}

// Lookup resolves a socket address to its simulated LDNS, or UnknownLDNS.
func (r *Registry) Lookup(addr net.Addr) netsim.HostID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id, ok := r.m[addr.String()]; ok {
		return id
	}
	return UnknownLDNS
}

// Server is an authoritative DNS-over-UDP server. Create it with Serve and
// stop it with Close; Close waits for in-flight requests.
type Server struct {
	pc       net.PacketConn
	backend  Backend
	registry *Registry

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Serve starts answering queries arriving on pc using backend. If registry
// is nil, every query is treated as coming from an unknown LDNS.
// The caller owns pc until Serve returns; afterwards the server owns it and
// closes it in Close.
func Serve(pc net.PacketConn, backend Backend, registry *Registry) (*Server, error) {
	if pc == nil {
		return nil, errors.New("dnsserver: nil PacketConn")
	}
	if backend == nil {
		return nil, errors.New("dnsserver: nil Backend")
	}
	s := &Server{
		pc:       pc,
		backend:  backend,
		registry: registry,
		closed:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.readLoop()
	return s, nil
}

// Addr returns the server's listening address.
func (s *Server) Addr() net.Addr { return s.pc.LocalAddr() }

// Close stops the server and waits for in-flight requests to drain. It is
// safe to call concurrently and repeatedly; every call waits for the drain
// and returns the socket's close result. (A non-blocking <-s.closed check
// here would race: two concurrent callers could both pass it and both close
// the channel, panicking.)
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.closeErr = s.pc.Close()
	})
	s.wg.Wait()
	return s.closeErr
}

func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, from, err := s.pc.ReadFrom(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			// Transient read errors on UDP are not fatal; keep serving
			// unless the socket is gone.
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.wg.Add(1)
		go func(pkt []byte, from net.Addr) {
			defer s.wg.Done()
			s.handle(pkt, from)
		}(pkt, from)
	}
}

func (s *Server) handle(pkt []byte, from net.Addr) {
	metrics.udpQueries.Inc()
	// The payload cap is the classic 512 bytes unless the query advertises
	// a larger EDNS0 buffer.
	maxSize := dnswire.MaxUDPPayload
	if query, err := dnswire.Unpack(pkt); err == nil {
		if size, ok := query.EDNS0UDPSize(); ok {
			maxSize = min(size, serverEDNSSize)
		}
	}
	wire := buildResponse(s.backend, s.registry, pkt, from, maxSize, true)
	if wire == nil {
		return
	}
	_, _ = s.pc.WriteTo(wire, from)
}

// serverEDNSSize is the largest UDP payload this server is willing to send.
const serverEDNSSize = 4096

// buildResponse parses one query and produces the wire response, or nil for
// datagrams that should be dropped (garbage, non-queries). overUDP controls
// truncation behaviour: TCP responses are never truncated.
func buildResponse(backend Backend, registry *Registry, pkt []byte, from net.Addr, maxSize int, overUDP bool) []byte {
	query, err := dnswire.Unpack(pkt)
	if err != nil || query.Response || len(query.Questions) != 1 {
		// Unparseable or non-query messages are dropped, matching common
		// authoritative-server behaviour for garbage input.
		return nil
	}

	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               query.ID,
			Response:         true,
			OpCode:           query.OpCode,
			Authoritative:    true,
			RecursionDesired: query.RecursionDesired,
		},
		Questions: query.Questions,
	}
	if query.OpCode != dnswire.OpQuery {
		resp.RCode = dnswire.RCodeNotImp
	} else {
		ldns := UnknownLDNS
		if registry != nil {
			ldns = registry.Lookup(from)
		}
		answers, rcode := backend.Answer(query.Questions[0], ldns)
		resp.Answers = answers
		resp.RCode = rcode
	}
	// Echo EDNS0 support with the server's own buffer size.
	if _, ok := query.EDNS0UDPSize(); ok {
		resp.SetEDNS0(serverEDNSSize)
	}

	wire, err := resp.Pack()
	if err != nil {
		resp.Answers = nil
		resp.RCode = dnswire.RCodeServFail
		if wire, err = resp.Pack(); err != nil {
			return nil
		}
	}
	// UDP truncation: drop answers and set TC if oversized; the client will
	// retry over TCP.
	if overUDP && len(wire) > maxSize {
		metrics.truncations.Inc()
		resp.Answers = nil
		resp.Truncated = true
		if wire, err = resp.Pack(); err != nil {
			return nil
		}
	}
	return wire
}
