package dnsserver

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

type fixture struct {
	topo    *netsim.Topology
	cdn     *cdn.Network
	clock   *netsim.Clock
	backend *CDNBackend
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 60
	p.NumCandidates = 20
	p.NumReplicas = 60
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		t.Fatalf("cdn.New: %v", err)
	}
	clock := netsim.NewClock()
	return &fixture{
		topo: topo, cdn: network, clock: clock,
		backend: &CDNBackend{Topo: topo, CDN: network, Clock: clock},
	}
}

func q(name string, typ dnswire.Type) dnswire.Question {
	return dnswire.Question{Name: name, Type: typ, Class: dnswire.ClassIN}
}

func TestBackendAnswersCDNName(t *testing.T) {
	f := newFixture(t)
	client := f.topo.Clients()[0]
	name := f.cdn.Names()[0]
	answers, rcode := f.backend.Answer(q(name, dnswire.TypeA), client)
	if rcode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v", rcode)
	}
	if len(answers) != cdn.DefaultAnswerCount {
		t.Fatalf("got %d answers, want %d", len(answers), cdn.DefaultAnswerCount)
	}
	want, err := f.cdn.Redirect(name, client, f.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range answers {
		if rec.Type != dnswire.TypeA || rec.TTL != 20 {
			t.Errorf("answer %d: type %v TTL %d, want A/20", i, rec.Type, rec.TTL)
		}
		a := rec.Data.(*dnswire.ARecord)
		if a.Addr != f.topo.Host(want[i]).Addr {
			t.Errorf("answer %d addr = %v, want %v", i, a.Addr, f.topo.Host(want[i]).Addr)
		}
	}
}

func TestBackendCDNAnswerDependsOnLDNS(t *testing.T) {
	f := newFixture(t)
	name := f.cdn.Names()[0]
	// Find two clients in different regions: their redirections should differ.
	clients := f.topo.Clients()
	a := clients[0]
	var b netsim.HostID = -1
	for _, c := range clients[1:] {
		if f.topo.Host(c).Region != f.topo.Host(a).Region {
			b = c
			break
		}
	}
	if b < 0 {
		t.Skip("no cross-region client pair")
	}
	ansA, _ := f.backend.Answer(q(name, dnswire.TypeA), a)
	ansB, _ := f.backend.Answer(q(name, dnswire.TypeA), b)
	if ansA[0].Data.(*dnswire.ARecord).Addr == ansB[0].Data.(*dnswire.ARecord).Addr {
		t.Error("cross-region clients received identical first answers; mapping not localized")
	}
}

func TestBackendUnknownLDNSGetsFallback(t *testing.T) {
	f := newFixture(t)
	name := f.cdn.Names()[0]
	answers, rcode := f.backend.Answer(q(name, dnswire.TypeA), UnknownLDNS)
	if rcode != dnswire.RCodeNoError || len(answers) == 0 {
		t.Fatalf("rcode = %v, %d answers", rcode, len(answers))
	}
	for _, rec := range answers {
		id, ok := f.topo.HostByAddr(rec.Data.(*dnswire.ARecord).Addr)
		if !ok || !f.cdn.IsFallback(id) {
			t.Errorf("unknown-LDNS answer %v is not a fallback replica", rec)
		}
	}
}

func TestBackendHostNames(t *testing.T) {
	f := newFixture(t)
	h := f.topo.Host(f.topo.Clients()[7])
	answers, rcode := f.backend.Answer(q(h.Name, dnswire.TypeA), UnknownLDNS)
	if rcode != dnswire.RCodeNoError || len(answers) != 1 {
		t.Fatalf("rcode = %v, %d answers", rcode, len(answers))
	}
	if got := answers[0].Data.(*dnswire.ARecord).Addr; got != h.Addr {
		t.Errorf("addr = %v, want %v", got, h.Addr)
	}
	// Case-insensitive lookup.
	upper := strings.ToUpper(h.Name[:1]) + h.Name[1:]
	if _, rcode := f.backend.Answer(q(upper, dnswire.TypeA), UnknownLDNS); rcode != dnswire.RCodeNoError {
		t.Errorf("uppercase lookup rcode = %v", rcode)
	}
}

func TestBackendMetaQueries(t *testing.T) {
	f := newFixture(t)
	tests := []struct {
		name      string
		question  dnswire.Question
		wantRCode dnswire.RCode
		wantAns   int
	}{
		{"soa at apex", q("sim.", dnswire.TypeSOA), dnswire.RCodeNoError, 1},
		{"ns at apex", q("sim.", dnswire.TypeNS), dnswire.RCodeNoError, 1},
		{"a at apex nodata", q("sim.", dnswire.TypeA), dnswire.RCodeNoError, 0},
		{"nxdomain", q("nothere.client.sim.", dnswire.TypeA), dnswire.RCodeNXDomain, 0},
		{"out of zone", q("example.com.", dnswire.TypeA), dnswire.RCodeRefused, 0},
		{"wrong class", dnswire.Question{Name: "sim.", Type: dnswire.TypeA, Class: 3}, dnswire.RCodeNotImp, 0},
		{"nodata txt on host", q(f.topo.Host(0).Name, dnswire.TypeTXT), dnswire.RCodeNoError, 0},
		{"soa on nonexistent", q("nope.sim.", dnswire.TypeSOA), dnswire.RCodeNXDomain, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			answers, rcode := f.backend.Answer(tt.question, UnknownLDNS)
			if rcode != tt.wantRCode {
				t.Errorf("rcode = %v, want %v", rcode, tt.wantRCode)
			}
			if len(answers) != tt.wantAns {
				t.Errorf("answers = %d, want %d", len(answers), tt.wantAns)
			}
		})
	}
}

func TestServerEndToEndOverUDP(t *testing.T) {
	f := newFixture(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	registry := NewRegistry()
	srv, err := Serve(pc, f.backend, registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ldns := f.topo.Clients()[2]
	client, err := NewClient(srv.Addr(), registry, ldns, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	name := f.cdn.Names()[0]
	resp, err := client.Query(name, dnswire.TypeA)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !resp.Response || !resp.Authoritative || resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("bad response header: %+v", resp.Header)
	}
	if len(resp.Answers) != cdn.DefaultAnswerCount {
		t.Fatalf("got %d answers, want %d", len(resp.Answers), cdn.DefaultAnswerCount)
	}
	// The wire answer matches the in-process mapping decision: both paths
	// share one mapping system.
	want, err := f.cdn.Redirect(name, ldns, f.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Answers[0].Data.(*dnswire.ARecord).Addr; got != f.topo.Host(want[0]).Addr {
		t.Errorf("wire answer %v, in-process answer %v", got, f.topo.Host(want[0]).Addr)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	f := newFixture(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	registry := NewRegistry()
	srv, err := Serve(pc, f.backend, registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const nClients = 8
	errc := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		go func(i int) {
			ldns := f.topo.Clients()[i]
			client, err := NewClient(srv.Addr(), registry, ldns, WithTimeout(time.Second))
			if err != nil {
				errc <- err
				return
			}
			defer client.Close()
			for j := 0; j < 10; j++ {
				resp, err := client.Query(f.cdn.Names()[j%2], dnswire.TypeA)
				if err != nil {
					errc <- err
					return
				}
				if resp.RCode != dnswire.RCodeNoError {
					errc <- err
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < nClients; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	f := newFixture(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(pc, f.backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Fire garbage at the server, then check it still answers real queries.
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, pkt := range [][]byte{{}, {1}, {0xFF, 0xFF, 0xFF}, make([]byte, 600)} {
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}

	client, err := NewClient(srv.Addr(), nil, UnknownLDNS, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	resp, err := client.Query("sim.", dnswire.TypeSOA)
	if err != nil {
		t.Fatalf("server unresponsive after garbage: %v", err)
	}
	if resp.RCode != dnswire.RCodeNoError {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestServerCloseIdempotentAndStops(t *testing.T) {
	f := newFixture(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(pc, f.backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestServerCloseConcurrent is the regression test for the double-close
// race: two callers passing a non-blocking <-closed check simultaneously
// would both close(closed) and panic. With sync.Once every caller returns
// cleanly and waits for the drain.
func TestServerCloseConcurrent(t *testing.T) {
	f := newFixture(t)
	for round := 0; round < 10; round++ {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve(pc, f.backend, nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := srv.Close(); err != nil {
					t.Errorf("concurrent Close: %v", err)
				}
			}()
		}
		wg.Wait()
	}
}

// TestTCPServerCloseConcurrent covers the same double-close race on the
// TCP listener variant.
func TestTCPServerCloseConcurrent(t *testing.T) {
	f := newFixture(t)
	for round := 0; round < 10; round++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeTCP(l, f.backend, nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := srv.Close(); err != nil {
					t.Errorf("concurrent TCP Close: %v", err)
				}
			}()
		}
		wg.Wait()
	}
}

func TestServeValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := Serve(nil, f.backend, nil); err == nil {
		t.Error("Serve(nil conn) should fail")
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := Serve(pc, nil, nil); err == nil {
		t.Error("Serve(nil backend) should fail")
	}
}

func TestClientClosed(t *testing.T) {
	f := newFixture(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(pc, f.backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := NewClient(srv.Addr(), nil, UnknownLDNS)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query("sim.", dnswire.TypeSOA); err != ErrClientClosed {
		t.Errorf("Query after Close: err = %v, want ErrClientClosed", err)
	}
	if err := client.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestClientTimesOutAgainstBlackhole(t *testing.T) {
	// A socket that never answers.
	hole, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	client, err := NewClient(hole.LocalAddr(), nil, UnknownLDNS,
		WithTimeout(50*time.Millisecond), WithRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	_, err = client.Query("sim.", dnswire.TypeSOA)
	if err == nil {
		t.Fatal("query against blackhole should fail")
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("gave up after %v; should have retried once", elapsed)
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 5353}
	if got := r.Lookup(addr); got != UnknownLDNS {
		t.Errorf("unregistered Lookup = %v, want UnknownLDNS", got)
	}
	r.Register(addr, 42)
	if got := r.Lookup(addr); got != 42 {
		t.Errorf("Lookup = %v, want 42", got)
	}
	r.Unregister(addr)
	if got := r.Lookup(addr); got != UnknownLDNS {
		t.Errorf("Lookup after Unregister = %v, want UnknownLDNS", got)
	}
}

func TestRecursorLatencies(t *testing.T) {
	f := newFixture(t)
	r := &Recursor{Topo: f.topo}
	probe := f.topo.Candidates()[0]
	a := f.topo.Clients()[0]
	b := f.topo.Clients()[1]

	direct, err := r.DirectLatencyMs(probe, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	recursive, err := r.RecursiveLatencyMs(probe, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recursive <= direct {
		t.Errorf("recursive latency %v not above direct %v", recursive, direct)
	}
	// The King difference should approximate RTT(a, b).
	truth := f.topo.RTTMs(a, b, 0)
	est := recursive - direct
	if est < truth*0.5 || est > truth*2+100 {
		t.Errorf("king-style estimate %v wildly off truth %v", est, truth)
	}

	if _, err := r.DirectLatencyMs(-1, a, 0); err == nil {
		t.Error("DirectLatencyMs with bad host should fail")
	}
	if _, err := r.RecursiveLatencyMs(probe, a, -1, 0); err == nil {
		t.Error("RecursiveLatencyMs with bad auth should fail")
	}
}
