package dnsserver

import (
	"fmt"
	"time"

	"repro/internal/netsim"
)

// Recursor models recursive DNS resolution latency inside the simulator.
// Spinning up one UDP socket per simulated resolver would not scale to the
// paper's 1,000+ hosts, so recursion is modelled on virtual time instead:
// a probe host asks a resolver, which (on a cache miss) asks the target's
// authoritative server. This is exactly the structure the King technique
// measures.
type Recursor struct {
	Topo *netsim.Topology
}

// saltRecursion decorrelates recursive-path measurement noise from other
// observers of the same host pairs.
const saltRecursion uint64 = 0x7265_6375

// DirectLatencyMs returns the latency a probe observes for a query the
// resolver can answer from its own authority or cache: one probe↔resolver
// round trip.
func (r *Recursor) DirectLatencyMs(probe, resolver netsim.HostID, at time.Duration) (float64, error) {
	if r.Topo.Host(probe) == nil || r.Topo.Host(resolver) == nil {
		return 0, fmt.Errorf("dnsserver: unknown host in pair (%d, %d)", probe, resolver)
	}
	return r.Topo.MeasureRTTMs(probe, resolver, at, saltRecursion), nil
}

// RecursiveLatencyMs returns the latency a probe observes for a cache-miss
// recursive query through resolver to the authoritative server auth:
// probe↔resolver plus resolver↔auth.
func (r *Recursor) RecursiveLatencyMs(probe, resolver, auth netsim.HostID, at time.Duration) (float64, error) {
	front, err := r.DirectLatencyMs(probe, resolver, at)
	if err != nil {
		return 0, err
	}
	if r.Topo.Host(auth) == nil {
		return 0, fmt.Errorf("dnsserver: unknown authoritative host %d", auth)
	}
	back := r.Topo.MeasureRTTMs(resolver, auth, at, saltRecursion+1)
	return front + back, nil
}
