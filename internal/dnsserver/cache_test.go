package dnsserver

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// fakeQuerier counts queries and answers with a configurable TTL.
type fakeQuerier struct {
	calls int
	ttl   uint32
	rcode dnswire.RCode
	empty bool
}

func (f *fakeQuerier) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	f.calls++
	m := &dnswire.Message{
		Header:    dnswire.Header{ID: uint16(f.calls), Response: true, RCode: f.rcode},
		Questions: []dnswire.Question{{Name: name, Type: qtype, Class: dnswire.ClassIN}},
	}
	if f.rcode == dnswire.RCodeNoError && !f.empty {
		m.Answers = []dnswire.Record{{
			Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: f.ttl,
			Data: &dnswire.ARecord{Addr: netip.AddrFrom4([4]byte{10, 0, 0, byte(f.calls)})},
		}}
	}
	return m, nil
}

// virtualClock is an adjustable time source.
type virtualClock struct{ t time.Time }

func (v *virtualClock) now() time.Time { return v.t }

func newCached(t *testing.T, f Querier, clock *virtualClock, opts ...CacheOption) *CachingClient {
	t.Helper()
	opts = append([]CacheOption{WithCacheClock(clock.now)}, opts...)
	c, err := NewCachingClient(f, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCachingClientValidation(t *testing.T) {
	if _, err := NewCachingClient(nil); err == nil {
		t.Error("nil querier should fail")
	}
}

func TestCacheHitWithinTTL(t *testing.T) {
	f := &fakeQuerier{ttl: 20}
	clock := &virtualClock{t: time.Unix(0, 0)}
	c := newCached(t, f, clock)

	first, cached, err := c.Query("a.sim.", dnswire.TypeA)
	if err != nil || cached {
		t.Fatalf("first query: cached=%v err=%v", cached, err)
	}
	clock.t = clock.t.Add(10 * time.Second)
	second, cached, err := c.Query("a.sim.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second query within TTL not served from cache")
	}
	if f.calls != 1 {
		t.Errorf("upstream queried %d times, want 1", f.calls)
	}
	a1 := first.Answers[0].Data.(*dnswire.ARecord).Addr
	a2 := second.Answers[0].Data.(*dnswire.ARecord).Addr
	if a1 != a2 {
		t.Errorf("cached answer differs: %v vs %v", a1, a2)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestCacheMissAfterExpiry(t *testing.T) {
	f := &fakeQuerier{ttl: 20}
	clock := &virtualClock{t: time.Unix(0, 0)}
	c := newCached(t, f, clock)

	if _, _, err := c.Query("a.sim.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	clock.t = clock.t.Add(21 * time.Second)
	_, cached, err := c.Query("a.sim.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("expired entry served from cache")
	}
	if f.calls != 2 {
		t.Errorf("upstream queried %d times, want 2", f.calls)
	}
}

func TestCacheKeysByNameAndType(t *testing.T) {
	f := &fakeQuerier{ttl: 60}
	clock := &virtualClock{t: time.Unix(0, 0)}
	c := newCached(t, f, clock)

	mustMiss := func(name string, qtype dnswire.Type) {
		t.Helper()
		if _, cached, err := c.Query(name, qtype); err != nil || cached {
			t.Fatalf("query %s %v: cached=%v err=%v", name, qtype, cached, err)
		}
	}
	mustMiss("a.sim.", dnswire.TypeA)
	mustMiss("b.sim.", dnswire.TypeA)
	mustMiss("a.sim.", dnswire.TypeTXT)
	// Case-insensitive keying: this is a hit.
	if _, cached, err := c.Query("A.sim.", dnswire.TypeA); err != nil || !cached {
		t.Errorf("case-folded query: cached=%v err=%v", cached, err)
	}
}

func TestCacheSkipsUncacheableResponses(t *testing.T) {
	clock := &virtualClock{t: time.Unix(0, 0)}
	for name, f := range map[string]*fakeQuerier{
		"nxdomain": {rcode: dnswire.RCodeNXDomain},
		"empty":    {empty: true},
		"zero ttl": {ttl: 0},
		"servfail": {rcode: dnswire.RCodeServFail},
	} {
		t.Run(name, func(t *testing.T) {
			c := newCached(t, f, clock)
			if _, _, err := c.Query("x.sim.", dnswire.TypeA); err != nil {
				t.Fatal(err)
			}
			if _, cached, _ := c.Query("x.sim.", dnswire.TypeA); cached {
				t.Error("uncacheable response was cached")
			}
			if f.calls != 2 {
				t.Errorf("upstream queried %d times, want 2", f.calls)
			}
		})
	}
}

func TestCacheReturnsPrivateCopies(t *testing.T) {
	f := &fakeQuerier{ttl: 60}
	clock := &virtualClock{t: time.Unix(0, 0)}
	c := newCached(t, f, clock)

	if _, _, err := c.Query("a.sim.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	m1, _, err := c.Query("a.sim.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	m1.Answers[0].Name = "tampered."
	m2, _, err := c.Query("a.sim.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Answers[0].Name == "tampered." {
		t.Error("cache returned shared message storage")
	}
}

func TestCacheEviction(t *testing.T) {
	f := &fakeQuerier{ttl: 3600}
	clock := &virtualClock{t: time.Unix(0, 0)}
	c := newCached(t, f, clock, WithCacheSize(3))

	for _, name := range []string{"a.sim.", "b.sim.", "c.sim.", "d.sim."} {
		if _, _, err := c.Query(name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got > 3 {
		t.Errorf("cache holds %d entries, cap 3", got)
	}
}

// optQuerier answers with an OPT pseudo-record *first* in the answer
// section, followed by a real A record — the shape that used to corrupt the
// cache TTL because the minimum was seeded from Answers[0] without skipping
// OPT.
type optQuerier struct {
	calls  int
	ttl    uint32 // A record TTL
	optTTL uint32 // OPT "TTL" field (extended rcode/flags, not a lifetime)
	only   bool   // answer with the OPT record alone
}

func (f *optQuerier) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	f.calls++
	m := &dnswire.Message{
		Header:    dnswire.Header{ID: uint16(f.calls), Response: true},
		Questions: []dnswire.Question{{Name: name, Type: qtype, Class: dnswire.ClassIN}},
		Answers: []dnswire.Record{{
			Name: ".", Type: dnswire.TypeOPT, Class: dnswire.Class(1232),
			TTL: f.optTTL, Data: &dnswire.OPTRecord{},
		}},
	}
	if !f.only {
		m.Answers = append(m.Answers, dnswire.Record{
			Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: f.ttl,
			Data: &dnswire.ARecord{Addr: netip.AddrFrom4([4]byte{10, 0, 0, byte(f.calls)})},
		})
	}
	return m, nil
}

// Regression: a leading OPT pseudo-record must not seed (or corrupt) the
// cache TTL. An OPT with a zero TTL field used to make the response
// uncacheable; an OPT with a huge TTL field used to stretch the lifetime
// when it was the only "answer".
func TestCacheSkipsLeadingOPTRecord(t *testing.T) {
	f := &optQuerier{ttl: 20, optTTL: 0}
	clock := &virtualClock{t: time.Unix(0, 0)}
	c := newCached(t, f, clock)

	if _, cached, err := c.Query("a.sim.", dnswire.TypeA); err != nil || cached {
		t.Fatalf("first query: cached=%v err=%v", cached, err)
	}
	// Within the A record's 20s TTL: the entry must be served from cache
	// even though the leading OPT's TTL field is 0.
	clock.t = clock.t.Add(10 * time.Second)
	if _, cached, err := c.Query("a.sim.", dnswire.TypeA); err != nil || !cached {
		t.Fatalf("within A TTL: cached=%v err=%v (leading OPT suppressed caching)", cached, err)
	}
	// The lifetime must come from the A record, not the OPT: past the A
	// record's 20s the entry expires even when the OPT's TTL field is huge.
	f2 := &optQuerier{ttl: 20, optTTL: 1 << 30}
	clock2 := &virtualClock{t: time.Unix(0, 0)}
	c2 := newCached(t, f2, clock2)
	if _, _, err := c2.Query("b.sim.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	clock2.t = clock2.t.Add(10 * time.Second)
	if _, cached, err := c2.Query("b.sim.", dnswire.TypeA); err != nil || !cached {
		t.Fatalf("within A TTL: cached=%v err=%v", cached, err)
	}
	clock2.t = clock2.t.Add(11 * time.Second)
	if _, cached, err := c2.Query("b.sim.", dnswire.TypeA); err != nil || cached {
		t.Fatalf("past A TTL: cached=%v err=%v (OPT TTL field stretched the lifetime)", cached, err)
	}
}

// Regression: a response whose only answer-section record is an OPT
// pseudo-record has no cacheable TTL at all.
func TestCacheIgnoresOPTOnlyAnswers(t *testing.T) {
	f := &optQuerier{only: true, optTTL: 1 << 30}
	clock := &virtualClock{t: time.Unix(0, 0)}
	c := newCached(t, f, clock)

	for i := 0; i < 2; i++ {
		if _, cached, err := c.Query("a.sim.", dnswire.TypeA); err != nil || cached {
			t.Fatalf("query %d: cached=%v err=%v (OPT-only answer was cached)", i, cached, err)
		}
	}
	if f.calls != 2 {
		t.Errorf("upstream queried %d times, want 2", f.calls)
	}
}

func TestCacheAgainstRealServer(t *testing.T) {
	fx := newFixture(t)
	pc, err := listenUDP(t)
	if err != nil {
		t.Fatal(err)
	}
	registry := NewRegistry()
	srv, err := Serve(pc, fx.backend, registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ldns := fx.topo.Clients()[0]
	client, err := NewClient(srv.Addr(), registry, ldns, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	clock := &virtualClock{t: time.Unix(0, 0)}
	c, err := NewCachingClient(client, WithCacheClock(clock.now))
	if err != nil {
		t.Fatal(err)
	}
	name := fx.cdn.Names()[0]
	if _, cached, err := c.Query(name, dnswire.TypeA); err != nil || cached {
		t.Fatalf("first: cached=%v err=%v", cached, err)
	}
	// Within the CDN's 20-second TTL: cached.
	clock.t = clock.t.Add(15 * time.Second)
	if _, cached, err := c.Query(name, dnswire.TypeA); err != nil || !cached {
		t.Fatalf("within TTL: cached=%v err=%v", cached, err)
	}
	// A CRP-style probe 10 minutes later always misses.
	clock.t = clock.t.Add(10 * time.Minute)
	if _, cached, err := c.Query(name, dnswire.TypeA); err != nil || cached {
		t.Fatalf("after TTL: cached=%v err=%v", cached, err)
	}
}

// listenUDP opens a loopback UDP socket for tests.
func listenUDP(t *testing.T) (net.PacketConn, error) {
	t.Helper()
	return net.ListenPacket("udp", "127.0.0.1:0")
}
