package dnsserver

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netsim"
)

// bulkBackend answers every A query with a configurable number of records —
// enough to overflow the classic 512-byte UDP limit and force truncation.
type bulkBackend struct {
	records int

	mu       sync.Mutex
	lastLDNS netsim.HostID
}

func (b *bulkBackend) last() netsim.HostID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastLDNS
}

func (b *bulkBackend) Answer(q dnswire.Question, ldns netsim.HostID) ([]dnswire.Record, dnswire.RCode) {
	b.mu.Lock()
	b.lastLDNS = ldns
	b.mu.Unlock()
	out := make([]dnswire.Record, b.records)
	for i := range out {
		out[i] = dnswire.Record{
			Name: q.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 20,
			Data: &dnswire.ARecord{Addr: addrFromInt(i)},
		}
	}
	return out, dnswire.RCodeNoError
}

func addrFromInt(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})
}

// startBoth starts a UDP and a TCP server on the same port.
func startBoth(t *testing.T, backend Backend, registry *Registry) (*Server, *TCPServer) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := pc.LocalAddr().(*net.UDPAddr).Port
	l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		pc.Close()
		t.Fatal(err)
	}
	udp, err := Serve(pc, backend, registry)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := ServeTCP(l, backend, registry)
	if err != nil {
		udp.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		udp.Close()
		tcp.Close()
	})
	return udp, tcp
}

func TestTruncationAndTCPFallback(t *testing.T) {
	backend := &bulkBackend{records: 60} // ~60*16 bytes of answers >> 512
	registry := NewRegistry()
	udp, _ := startBoth(t, backend, registry)

	client, err := NewClient(udp.Addr(), registry, 7, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Query("bulk.sim.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if resp.Truncated {
		t.Fatal("client surfaced a truncated response instead of falling back to TCP")
	}
	if len(resp.Answers) != 60 {
		t.Fatalf("got %d answers over TCP fallback, want 60", len(resp.Answers))
	}
	// The TCP path preserved the client's LDNS identity.
	if got := backend.last(); got != 7 {
		t.Errorf("TCP query attributed to LDNS %d, want 7", got)
	}
}

func TestTruncationSurfacesWithoutFallback(t *testing.T) {
	backend := &bulkBackend{records: 60}
	udp, _ := startBoth(t, backend, nil)

	client, err := NewClient(udp.Addr(), nil, UnknownLDNS,
		WithTimeout(time.Second), WithTCPFallback(false))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Query("bulk.sim.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("expected a truncated response with fallback disabled")
	}
	if len(resp.Answers) != 0 {
		t.Errorf("truncated response carries %d answers", len(resp.Answers))
	}
}

func TestEDNS0AvoidsTruncation(t *testing.T) {
	backend := &bulkBackend{records: 60}
	udp, _ := startBoth(t, backend, nil)

	client, err := NewClient(udp.Addr(), nil, UnknownLDNS,
		WithTimeout(time.Second), WithEDNS0(4096), WithTCPFallback(false))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Query("bulk.sim.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Fatal("response truncated despite EDNS0 buffer")
	}
	if len(resp.Answers) != 60 {
		t.Fatalf("got %d answers, want 60", len(resp.Answers))
	}
	if size, ok := resp.EDNS0UDPSize(); !ok || size != serverEDNSSize {
		t.Errorf("server echoed EDNS size %d,%v; want %d", size, ok, serverEDNSSize)
	}
}

func TestEDNS0CapRespectsClientBuffer(t *testing.T) {
	// 60 records ≈ 1 KB; a client advertising 600 bytes must still get TC.
	backend := &bulkBackend{records: 60}
	udp, _ := startBoth(t, backend, nil)

	client, err := NewClient(udp.Addr(), nil, UnknownLDNS,
		WithTimeout(time.Second), WithEDNS0(600), WithTCPFallback(false))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Query("bulk.sim.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("expected truncation for a response above the advertised buffer")
	}
}

func TestTCPServerDirectQueries(t *testing.T) {
	backend := &bulkBackend{records: 2}
	_, tcp := startBoth(t, backend, nil)

	conn, err := net.Dial("tcp", tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := &dnswire.Message{
		Header:    dnswire.Header{ID: 42},
		Questions: []dnswire.Question{{Name: "x.sim.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	wire, err := msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Two sequential queries on one connection.
	for round := 0; round < 2; round++ {
		if err := writeTCPMessage(conn, wire); err != nil {
			t.Fatal(err)
		}
		raw, err := readTCPMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := dnswire.Unpack(raw)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != 42 || len(resp.Answers) != 2 {
			t.Fatalf("round %d: bad response %+v", round, resp.Header)
		}
	}
}

func TestTCPServerDropsGarbageConnection(t *testing.T) {
	backend := &bulkBackend{records: 1}
	_, tcp := startBoth(t, backend, nil)

	conn, err := net.Dial("tcp", tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A length prefix promising garbage.
	if err := writeTCPMessage(conn, []byte{0xFF, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered a garbage message instead of closing")
	}
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	backend := &bulkBackend{records: 1}
	_, tcp := startBoth(t, backend, nil)
	if err := tcp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tcp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServeTCPValidation(t *testing.T) {
	if _, err := ServeTCP(nil, &bulkBackend{}, nil); err == nil {
		t.Error("ServeTCP(nil listener) should fail")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := ServeTCP(l, nil, nil); err == nil {
		t.Error("ServeTCP(nil backend) should fail")
	}
}

func TestWriteTCPMessageTooLarge(t *testing.T) {
	if err := writeTCPMessage(nil, make([]byte, 0x10000)); err == nil {
		t.Error("oversized message should fail before writing")
	}
}
