// Game-server selection (the paper's §IV-A motivation): an interactive
// online game with a mirrored-server architecture assigns each joining
// player to the nearest game server using CRP — no latency probes from
// players to servers, only the CDN redirections both sides already observe.
//
// The example builds a world with 400 players and 60 game servers, drives
// redirection collection, assigns every player with CRP's Top-1 choice, and
// reports the achieved latency against the optimal assignment and a random
// one.
//
//	go run ./examples/gameservers
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/meridian"
	"repro/internal/netsim"
)

const (
	numPlayers     = 400
	numGameServers = 60
	probeCount     = 24
	probeInterval  = 10 * time.Minute
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gameservers:", err)
		os.Exit(1)
	}
}

func run() error {
	params := netsim.DefaultParams()
	params.NumClients = numPlayers
	params.NumCandidates = numGameServers
	params.NumReplicas = 400
	topo, err := netsim.Generate(params)
	if err != nil {
		return err
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		return err
	}

	players := topo.Clients()
	servers := topo.Candidates()
	fmt.Printf("world: %d players, %d game servers, %d CDN replicas\n\n",
		len(players), len(servers), len(topo.Replicas()))

	// Both players and servers passively track their CDN redirections.
	svc := crp.NewService(crp.WithWindow(10))
	epoch := time.Now()
	observe := func(h netsim.HostID) error {
		for i := 0; i < probeCount; i++ {
			at := time.Duration(i) * probeInterval
			for _, name := range network.Names() {
				replicas, err := network.Redirect(name, h, at)
				if err != nil {
					return err
				}
				ids := make([]crp.ReplicaID, len(replicas))
				for j, r := range replicas {
					ids[j] = crp.ReplicaID(topo.Host(r).Name)
				}
				if err := svc.Observe(crp.NodeID(topo.Host(h).Name), epoch.Add(at), ids...); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, h := range append(append([]netsim.HostID(nil), players...), servers...) {
		if err := observe(h); err != nil {
			return err
		}
	}

	serverNodes := make([]crp.NodeID, len(servers))
	for i, s := range servers {
		serverNodes[i] = crp.NodeID(topo.Host(s).Name)
	}

	// Assign every player; measure the latency the assignment achieves.
	evalAt := time.Duration(probeCount) * probeInterval
	var crpLat, optLat, randLat []float64
	noSignal := 0
	for pi, p := range players {
		best, ok, err := svc.ClosestTo(crp.NodeID(topo.Host(p).Name), serverNodes)
		if err != nil {
			return err
		}
		if !ok {
			noSignal++
		}
		chosen, found := topo.HostByName(string(best.Node))
		if !found {
			return fmt.Errorf("unknown server %q", best.Node)
		}
		crpLat = append(crpLat, topo.RTTMs(p, chosen, evalAt))

		opt := servers[0]
		for _, s := range servers {
			if topo.RTTMs(p, s, evalAt) < topo.RTTMs(p, opt, evalAt) {
				opt = s
			}
		}
		optLat = append(optLat, topo.RTTMs(p, opt, evalAt))
		randLat = append(randLat, topo.RTTMs(p, servers[(pi*31)%len(servers)], evalAt))
	}

	report := func(label string, lat []float64) {
		sorted := append([]float64(nil), lat...)
		sort.Float64s(sorted)
		sum := 0.0
		playable := 0 // interactive games want < 100 ms
		for _, v := range lat {
			sum += v
			if v < 100 {
				playable++
			}
		}
		fmt.Printf("%-12s mean %6.1f ms   median %6.1f ms   p90 %6.1f ms   <100ms %3.0f%%\n",
			label, sum/float64(len(lat)), sorted[len(sorted)/2], sorted[len(sorted)*9/10],
			100*float64(playable)/float64(len(lat)))
	}
	report("optimal", optLat)
	report("crp", crpLat)
	report("random", randLat)
	fmt.Printf("\nplayers without CRP signal: %d/%d\n", noSignal, len(players))

	// Bonus: hosting a party. Three friends want a session host within a
	// real-time delay budget of each of them — the multi-constraint query
	// the paper's introduction motivates, answered by the Meridian overlay
	// over the same game servers.
	overlay, err := meridian.Build(meridian.Config{Topo: topo, Members: servers, Seed: 1})
	if err != nil {
		return err
	}
	// A party of three players from one region.
	var party []netsim.HostID
	wantRegion := topo.Host(players[0]).Region
	for _, p := range players {
		if topo.Host(p).Region == wantRegion {
			party = append(party, p)
			if len(party) == 3 {
				break
			}
		}
	}
	const budgetMs = 90
	constraints := make([]meridian.Constraint, len(party))
	for i, p := range party {
		constraints[i] = meridian.Constraint{Target: p, BoundMs: budgetMs}
	}
	hosts, stats, err := overlay.SatisfyConstraints(servers[0], constraints, 3, evalAt)
	if err != nil {
		return err
	}
	fmt.Printf("\nparty of %d players in %s, %d ms budget: %d eligible hosts found (%d probes)\n",
		len(party), wantRegion, budgetMs, len(hosts), stats.Probes)
	for _, h := range hosts {
		fmt.Printf("  %-24s", topo.Host(h).Name)
		for _, p := range party {
			fmt.Printf("  %5.1f ms", topo.RTTMs(h, p, evalAt))
		}
		fmt.Println()
	}
	return nil
}
