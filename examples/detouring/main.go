// One-hop detouring via CDN infrastructure (the paper's §I and its prior
// work, "Drafting behind Akamai"): inter-domain routing leaves latency on
// the table, and the replica servers two hosts are *both* redirected to are
// natural one-hop relay candidates — already known to be near both ends,
// discovered with zero probing.
//
// The example collects redirection ratio maps for 200 hosts, surveys every
// pair with the detour finder, and reports how often the best one-hop path
// through a shared replica beats the direct path — the prior work found
// this happens in roughly half the cases.
//
//	go run ./examples/detouring
package main

import (
	"fmt"
	"os"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/detour"
	"repro/internal/netsim"
)

const (
	numHosts      = 200
	probeCount    = 24
	probeInterval = 10 * time.Minute
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "detouring:", err)
		os.Exit(1)
	}
}

func run() error {
	params := netsim.DefaultParams()
	params.NumClients = numHosts
	params.NumCandidates = 10
	params.NumReplicas = 400
	topo, err := netsim.Generate(params)
	if err != nil {
		return err
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		return err
	}
	hosts := topo.Clients()

	// Collect each host's redirection ratio map.
	epoch := time.Now()
	maps := make(map[netsim.HostID]crp.RatioMap, len(hosts))
	for _, h := range hosts {
		tr := crp.NewTracker()
		for i := 0; i < probeCount; i++ {
			at := time.Duration(i) * probeInterval
			for _, name := range network.Names() {
				replicas, err := network.Redirect(name, h, at)
				if err != nil {
					return err
				}
				ids := make([]crp.ReplicaID, len(replicas))
				for j, r := range replicas {
					ids[j] = crp.ReplicaID(topo.Host(r).Name)
				}
				tr.Observe(epoch.Add(at), ids...)
			}
		}
		maps[h] = tr.RatioMap()
	}

	evalAt := time.Duration(probeCount) * probeInterval
	finder, err := detour.NewFinder(
		&detour.TopoEvaluator{Topo: topo, At: evalAt},
		func(r crp.ReplicaID) (netsim.HostID, bool) { return topo.HostByName(string(r)) },
	)
	if err != nil {
		return err
	}

	wins, frac, err := finder.Survey(hosts, maps)
	if err != nil {
		return err
	}
	fmt.Printf("surveyed %d hosts pairwise for shared-replica detours\n", len(hosts))
	fmt.Printf("one-hop detour beats the direct path for %.0f%% of evaluable pairs (%d wins)\n\n",
		frac*100, len(wins))

	fmt.Println("largest improvements:")
	for i := 0; i < 5 && i < len(wins); i++ {
		w := wins[i]
		fmt.Printf("  %s ↔ %s: direct %.1f ms, via %s %.1f ms (saves %.1f ms)\n",
			topo.Host(w.A).Name, topo.Host(w.B).Name,
			w.Route.DirectMs, w.Route.Via, w.Route.RelayedMs, w.Route.SavingMs)
	}
	return nil
}
