// Peer clustering for a swarming data-sharing system (the paper's §IV-B
// motivation): a BitTorrent-like swarm wants each peer to exchange data
// with nearby peers to cut latency and increase throughput, and a
// reliability layer wants a set of peers whose failures are uncorrelated.
//
// The example clusters a 300-peer swarm with CRP's Strongest Mappings First
// algorithm, then answers the paper's three query types and quantifies the
// benefit: RTT to cluster-mates vs. RTT to random peers.
//
//	go run ./examples/swarmclusters
package main

import (
	"fmt"
	"os"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/netsim"
)

const (
	numPeers      = 300
	probeCount    = 24
	probeInterval = 10 * time.Minute
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swarmclusters:", err)
		os.Exit(1)
	}
}

func run() error {
	params := netsim.DefaultParams()
	params.NumClients = numPeers
	params.NumCandidates = 10
	params.NumReplicas = 400
	topo, err := netsim.Generate(params)
	if err != nil {
		return err
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		return err
	}
	peers := topo.Clients()

	// Peers track redirections (in deployment: passively, from the DNS
	// lookups their own web traffic already performs).
	svc := crp.NewService(crp.WithWindow(10))
	epoch := time.Now()
	for _, p := range peers {
		for i := 0; i < probeCount; i++ {
			at := time.Duration(i) * probeInterval
			for _, name := range network.Names() {
				replicas, err := network.Redirect(name, p, at)
				if err != nil {
					return err
				}
				ids := make([]crp.ReplicaID, len(replicas))
				for j, r := range replicas {
					ids[j] = crp.ReplicaID(topo.Host(r).Name)
				}
				if err := svc.Observe(crp.NodeID(topo.Host(p).Name), epoch.Add(at), ids...); err != nil {
					return err
				}
			}
		}
	}

	cfg := crp.ClusterConfig{Threshold: crp.DefaultThreshold, SecondPass: true, Seed: 1}

	// Query 2: map each peer to a cluster.
	clusters, err := svc.ClusterAll(cfg)
	if err != nil {
		return err
	}
	summary := crp.Summarize(clusters, len(peers))
	fmt.Printf("swarm of %d peers → %d clusters of size ≥ 2 (%.0f%% of peers; mean size %.1f, max %d)\n\n",
		len(peers), summary.NumClusters, 100*summary.FracClustered, summary.MeanSize, summary.MaxSize)

	// Query 1: who is in my cluster? Compare cluster-mate RTTs to random-peer
	// RTTs for every clustered peer.
	evalAt := time.Duration(probeCount) * probeInterval
	var mateSum, randSum float64
	var mateN, randN int
	for _, c := range clusters {
		if c.Size() < 2 {
			continue
		}
		for _, m := range c.Members {
			mid, _ := topo.HostByName(string(m))
			for _, o := range c.Members {
				if o == m {
					continue
				}
				oid, _ := topo.HostByName(string(o))
				mateSum += topo.RTTMs(mid, oid, evalAt)
				mateN++
			}
			// One random non-cluster peer per member for the baseline.
			rp := peers[(int(mid)*17)%len(peers)]
			if rp != mid {
				randSum += topo.RTTMs(mid, rp, evalAt)
				randN++
			}
		}
	}
	if mateN == 0 || randN == 0 {
		return fmt.Errorf("degenerate clustering: no multi-peer clusters")
	}
	fmt.Printf("mean RTT to cluster-mates:  %6.1f ms\n", mateSum/float64(mateN))
	fmt.Printf("mean RTT to random peers:   %6.1f ms\n\n", randSum/float64(randN))

	// Show the first clustered peer's cluster-mates.
	for _, c := range clusters {
		if c.Size() >= 3 {
			peer := c.Members[0]
			mates, err := svc.SameCluster(peer, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("peers sharing %s's cluster: %v\n\n", peer, mates)
			break
		}
	}

	// Query 3: five peers in distinct clusters — replica holders whose
	// failures are unlikely to be correlated.
	diverse, err := svc.DistinctClusters(5, cfg)
	if err != nil {
		return err
	}
	fmt.Println("five failure-independent replica holders (distinct clusters):")
	for _, d := range diverse {
		id, _ := topo.HostByName(string(d))
		fmt.Printf("  %-24s %s / metro %d / AS%d\n",
			d, topo.Host(id).Region, topo.Host(id).Metro, topo.Host(id).ASN)
	}
	return nil
}
