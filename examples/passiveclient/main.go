// Passive CRP (§VI): "even this minor overhead may not be necessary if the
// service can passively monitor user-generated DNS translations (e.g., from
// Web browsing) instead of actively requesting CDN redirections."
//
// This example simulates a user browsing the web behind a TTL-honoring
// caching resolver. The browsing traffic resolves both useful
// CDN-accelerated names and a useless CDN-owned name; a PassiveMonitor taps
// the post-cache answers, a NameSelector learns which names carry
// positioning signal, and the client ends up with a usable ratio map — and
// a correct closest-server choice — having issued zero probes of its own.
//
//	go run ./examples/passiveclient
package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "passiveclient:", err)
		os.Exit(1)
	}
}

// browseQuerier simulates the client's stub resolver answering its browser:
// it asks the CDN directly (in-process) on cache misses.
type browseQuerier struct {
	topo   *netsim.Topology
	cdn    *cdn.Network
	client netsim.HostID
	now    func() time.Duration
}

func (q *browseQuerier) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	replicas, err := q.cdn.Redirect(name, q.client, q.now())
	if err != nil {
		return nil, err
	}
	msg := &dnswire.Message{
		Header:    dnswire.Header{Response: true, Authoritative: true},
		Questions: []dnswire.Question{{Name: name, Type: qtype, Class: dnswire.ClassIN}},
	}
	for _, r := range replicas {
		msg.Answers = append(msg.Answers, dnswire.Record{
			Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL:  uint32(q.cdn.TTL() / time.Second),
			Data: &dnswire.ARecord{Addr: q.topo.Host(r).Addr},
		})
	}
	return msg, nil
}

func run() error {
	params := netsim.DefaultParams()
	params.NumClients = 120
	params.NumCandidates = 40
	params.NumReplicas = 300
	topo, err := netsim.Generate(params)
	if err != nil {
		return err
	}
	network, err := cdn.New(cdn.Config{
		Topo:        topo,
		GlobalNames: []string{"a1105.akam-owned.cdn.sim."}, // carries no signal
	})
	if err != nil {
		return err
	}
	client := topo.Clients()[0]

	// The browsing session drives DNS through a real TTL-honoring cache.
	// (dnsserver.CachingClient is generic over any Querier; here the
	// querier asks the CDN mapping system directly.)
	clock := netsim.NewClock()
	querier := &browseQuerier{topo: topo, cdn: network, client: client, now: clock.Now}
	cache, err := newCache(querier, clock)
	if err != nil {
		return err
	}

	// Passive side: service + name quality learning + owned-domain filter.
	svc := crp.NewService(crp.WithWindow(30))
	selector := crp.NewNameSelector()
	monitor, err := crp.NewPassiveMonitor(svc, "browser-host", crp.PassiveConfig{
		Filter: func(r crp.ReplicaID) bool {
			id, ok := topo.HostByName(string(r))
			return ok && network.IsFallback(id)
		},
		Selector: selector,
	})
	if err != nil {
		return err
	}

	// Simulate a browsing day: bursts of page loads, each resolving the
	// names its pages embed.
	rng := rand.New(rand.NewPCG(42, 1))
	epoch := time.Now()
	lookups, recorded := 0, 0
	for burst := 0; burst < 60; burst++ {
		pageLoads := 1 + rng.IntN(5)
		for p := 0; p < pageLoads; p++ {
			for _, name := range network.Names() {
				resp, _, err := cache.Query(name, dnswire.TypeA)
				if err != nil {
					return err
				}
				lookups++
				var answers []crp.ReplicaID
				for _, rec := range resp.Answers {
					if a, ok := rec.Data.(*dnswire.ARecord); ok {
						if id, ok := topo.HostByAddr(a.Addr); ok {
							answers = append(answers, crp.ReplicaID(topo.Host(id).Name))
						}
					}
				}
				ok, err := monitor.ObserveDNS(epoch.Add(clock.Now()), name, answers...)
				if err != nil {
					return err
				}
				if ok {
					recorded++
				}
			}
			clock.Advance(time.Duration(5+rng.IntN(40)) * time.Second)
		}
		clock.Advance(time.Duration(10+rng.IntN(30)) * time.Minute)
	}

	hits, misses := cache.Stats()
	fmt.Printf("browsing session: %d lookups observed (%d cache hits, %d upstream), %d recorded into the ratio map\n",
		lookups, hits, misses, recorded)

	fmt.Println("\nlearned name quality:")
	for _, q := range selector.Qualities() {
		fmt.Printf("  %-28s %3d lookups, %3d replicas, %3.0f%% filtered\n",
			q.Name, q.Lookups, q.DistinctReplicas, 100*q.FilteredFraction)
	}
	fmt.Printf("names worth watching: %v\n", selector.Select(crp.SelectCriteria{}))

	// The passively collected map supports a real decision with zero probes.
	near, far := topo.Candidates()[0], topo.Candidates()[0]
	for _, c := range topo.Candidates() {
		if topo.BaseRTTMs(client, c) < topo.BaseRTTMs(client, near) {
			near = c
		}
		if topo.BaseRTTMs(client, c) > topo.BaseRTTMs(client, far) {
			far = c
		}
	}
	// The two servers' maps come from their own (active) tracking.
	for _, srv := range []netsim.HostID{near, far} {
		for i := 0; i < 20; i++ {
			at := time.Duration(i) * 10 * time.Minute
			for _, name := range network.Names()[:2] {
				replicas, err := network.Redirect(name, srv, at)
				if err != nil {
					return err
				}
				ids := make([]crp.ReplicaID, len(replicas))
				for j, r := range replicas {
					ids[j] = crp.ReplicaID(topo.Host(r).Name)
				}
				if err := svc.Observe(crp.NodeID(topo.Host(srv).Name), epoch.Add(at), ids...); err != nil {
					return err
				}
			}
		}
	}
	best, ok, err := svc.ClosestTo("browser-host",
		[]crp.NodeID{crp.NodeID(topo.Host(near).Name), crp.NodeID(topo.Host(far).Name)})
	if err != nil {
		return err
	}
	verdict := "near"
	if best.Node == crp.NodeID(topo.Host(far).Name) {
		verdict = "far (wrong!)"
	}
	fmt.Printf("\nzero-probe selection: %s = the %s server (similarity %.3f, signal %v)\n",
		best.Node, verdict, best.Similarity, ok)
	fmt.Printf("true RTTs: near %s %.1f ms, far %s %.1f ms\n",
		topo.Host(near).Name, topo.RTTMs(client, near, clock.Now()),
		topo.Host(far).Name, topo.RTTMs(client, far, clock.Now()))
	return nil
}

// newCache adapts the virtual clock to the caching client's time source.
func newCache(q dnsserver.Querier, clock *netsim.Clock) (*dnsserver.CachingClient, error) {
	epoch := time.Now()
	return dnsserver.NewCachingClient(q, dnsserver.WithCacheClock(func() time.Time {
		return epoch.Add(clock.Now())
	}))
}
