// Quickstart: the smallest end-to-end CRP pipeline.
//
// It boots a simulated world (topology + Akamai-like CDN), serves the CDN
// zone over a real UDP DNS server, lets three hosts collect their
// redirections through actual DNS queries, and then uses the public crp
// package to compare their ratio maps, select the closest of two servers
// for a client, and cluster the trio — the paper's §III/§IV workflow in
// miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A small simulated world: hosts, ASes, latencies, and a CDN.
	params := netsim.DefaultParams()
	params.NumClients = 100
	params.NumCandidates = 20
	params.NumReplicas = 150
	topo, err := netsim.Generate(params)
	if err != nil {
		return err
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		return err
	}

	// 2. The CDN zone behind a real UDP DNS server.
	clock := netsim.NewClock()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	registry := dnsserver.NewRegistry()
	srv, err := dnsserver.Serve(pc, &dnsserver.CDNBackend{Topo: topo, CDN: network, Clock: clock}, registry)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("CDN authoritative server on %s, TTL %v\n\n", srv.Addr(), network.TTL())

	// 3. A client in the CDN's best-covered region, and two candidate
	// servers: the truly nearest and the truly farthest. CRP should tell
	// them apart without the client ever probing either.
	client := topo.Clients()[0]
	for _, c := range topo.Clients() {
		if topo.Host(c).Region == "north-america" {
			client = c
			break
		}
	}
	near, far := topo.Candidates()[0], topo.Candidates()[0]
	for _, c := range topo.Candidates() {
		if topo.BaseRTTMs(client, c) < topo.BaseRTTMs(client, near) {
			near = c
		}
		if topo.BaseRTTMs(client, c) > topo.BaseRTTMs(client, far) {
			far = c
		}
	}

	// 4. Everyone watches their CDN redirections — via real DNS queries —
	// for 12 probes at a 10-minute (virtual) interval.
	svc := crp.NewService(crp.WithWindow(10))
	epoch := time.Now()
	for _, h := range []netsim.HostID{client, near, far} {
		cl, err := dnsserver.NewClient(srv.Addr(), registry, h)
		if err != nil {
			return err
		}
		clock.Set(0)
		for i := 0; i < 12; i++ {
			for _, name := range network.Names() {
				resp, err := cl.Query(name, dnswire.TypeA)
				if err != nil {
					cl.Close()
					return err
				}
				var ids []crp.ReplicaID
				for _, rec := range resp.Answers {
					if a, ok := rec.Data.(*dnswire.ARecord); ok {
						if id, ok := topo.HostByAddr(a.Addr); ok {
							ids = append(ids, crp.ReplicaID(topo.Host(id).Name))
						}
					}
				}
				if err := svc.Observe(nodeID(topo, h), epoch.Add(clock.Now()), ids...); err != nil {
					cl.Close()
					return err
				}
			}
			clock.Advance(10 * time.Minute)
		}
		cl.Close()
	}

	// 5. Inspect the ratio maps and relative positions.
	for _, h := range []netsim.HostID{client, near, far} {
		m, err := svc.RatioMap(nodeID(topo, h))
		if err != nil {
			return err
		}
		fmt.Printf("%-22s (%s)\n  ν = %s\n", topo.Host(h).Name, topo.Host(h).Region, m)
	}
	simNear, err := svc.Similarity(nodeID(topo, client), nodeID(topo, near))
	if err != nil {
		return err
	}
	simFar, err := svc.Similarity(nodeID(topo, client), nodeID(topo, far))
	if err != nil {
		return err
	}
	fmt.Printf("\ncos_sim(client, near server) = %.3f\n", simNear)
	fmt.Printf("cos_sim(client, far server)  = %.3f\n", simFar)

	// 6. Closest-node selection, and the ground truth it should match.
	best, ok, err := svc.ClosestTo(nodeID(topo, client), []crp.NodeID{nodeID(topo, near), nodeID(topo, far)})
	if err != nil {
		return err
	}
	fmt.Printf("\nCRP selects %s (similarity %.3f, signal=%v)\n", best.Node, best.Similarity, ok)
	fmt.Printf("true RTTs: near %.1f ms, far %.1f ms\n",
		topo.RTTMs(client, near, clock.Now()), topo.RTTMs(client, far, clock.Now()))

	// 7. Clustering: feed 40 clients' redirections through the fast
	// in-process path (same mapping system as the DNS server) and group them
	// with Strongest Mappings First.
	for _, h := range topo.Clients()[:40] {
		for i := 0; i < 12; i++ {
			at := time.Duration(i) * 10 * time.Minute
			for _, name := range network.Names() {
				replicas, err := network.Redirect(name, h, at)
				if err != nil {
					return err
				}
				ids := make([]crp.ReplicaID, len(replicas))
				for j, r := range replicas {
					ids[j] = crp.ReplicaID(topo.Host(r).Name)
				}
				if err := svc.Observe(nodeID(topo, h), epoch.Add(at), ids...); err != nil {
					return err
				}
			}
		}
	}
	clusters, err := svc.ClusterAll(crp.ClusterConfig{Threshold: crp.DefaultThreshold, SecondPass: true})
	if err != nil {
		return err
	}
	fmt.Println("\nclusters of 40 clients (multi-node only):")
	for _, c := range clusters {
		if c.Size() < 2 {
			continue
		}
		regions := map[string]bool{}
		for _, m := range c.Members {
			if id, ok := topo.HostByName(string(m)); ok {
				regions[topo.Host(id).Region] = true
			}
		}
		fmt.Printf("  center %-22s %2d members, regions %v\n", c.Center, c.Size(), keys(regions))
	}
	return nil
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func nodeID(topo *netsim.Topology, h netsim.HostID) crp.NodeID {
	return crp.NodeID(topo.Host(h).Name)
}
