GO ?= go

.PHONY: build test bench race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the root-package micro-benchmarks, then the daemon stress bench,
# which compares cheap-op latency with and without concurrent SMF clustering
# load and writes BENCH_crpd.json (throughput, latency percentiles and the
# daemon's obs metrics snapshot).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
	$(GO) run ./cmd/crpbench -exp crpd -quick -out BENCH_crpd.json

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full suite under the
# race detector (the crp package runs real goroutine fan-out in its query and
# clustering paths).
check: vet race
