GO ?= go

.PHONY: build test bench race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full suite under the
# race detector (the crp package runs real goroutine fan-out in its query and
# clustering paths).
check: vet race
