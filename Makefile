GO ?= go

.PHONY: build test bench race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the root-package micro-benchmarks, then the daemon stress bench
# (BENCH_crpd.json: cheap-op latency with and without concurrent SMF
# clustering load), then the store churn bench at full scale
# (BENCH_churn.json: query latency under continuous ingestion, sharded store
# vs the single-snapshot baseline, 50k nodes). Both reports embed provenance
# metadata (seed, host width, go version, scale knobs).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
	$(GO) run ./cmd/crpbench -exp crpd -quick -out BENCH_crpd.json
	$(GO) run ./cmd/crpbench -exp churn -out BENCH_churn.json

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full suite under the
# race detector (the crp package runs real goroutine fan-out in its query and
# clustering paths).
check: vet race
