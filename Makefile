GO ?= go

.PHONY: build test bench race vet fmt check test-faults test-scenario test-drift

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the root-package micro-benchmarks, then the daemon stress bench
# (BENCH_crpd.json: cheap-op latency with and without concurrent SMF
# clustering load), then the store churn bench at full scale
# (BENCH_churn.json: query latency under continuous ingestion, sharded store
# vs the single-snapshot baseline, 50k nodes), then the fault sweep
# (BENCH_faults.json: closest-node accuracy across probe-loss rates x CDN
# staleness windows), then the gossip sweep (BENCH_gossip.json: multi-daemon
# convergence rounds and replication fidelity across rumor fanout x
# gossip-link packet loss), then the aggregation scale bench
# (BENCH_scale.json: million-client ingest with prefix aggregation on/off x
# prefix granularity — state reduction, closest-node rank delta vs the
# per-client baseline, query p99 under concurrent ingest), then the
# multi-CDN fusion bench (BENCH_fusion.json: fused vs single-CDN
# closest-node rank and SMF quality across replica-density x
# coverage-sparsity cells, with the 1-namespace bit-identity gate), then
# the drift detector bench (BENCH_drift.json: CDN-change detection
# precision/recall/latency vs the fault plane's compiled truth schedule
# across detector sensitivity x fault scenario, self-gating). All reports
# embed provenance metadata (seed, host width, go version, scale knobs).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
	$(GO) run ./cmd/crpbench -exp crpd -quick -out BENCH_crpd.json
	$(GO) run ./cmd/crpbench -exp churn -out BENCH_churn.json
	$(GO) run ./cmd/crpbench -exp faults -out BENCH_faults.json
	$(GO) run ./cmd/crpbench -exp gossip -out BENCH_gossip.json
	$(GO) run ./cmd/crpbench -exp scale -out BENCH_scale.json
	$(GO) run ./cmd/crpbench -exp fusion -out BENCH_fusion.json
	$(GO) run ./cmd/crpbench -exp drift -out BENCH_drift.json

# test-faults runs the fault-injection degradation suite (clean-vs-faulted
# accuracy envelopes per fault class, activation-counter assertions,
# byte-identical reruns) under the race detector, the packet-level fault
# tests on the dnsserver and crpd UDP paths, then a short fuzz smoke over
# the five wire decoders (DNS, plus the JSON and binary decoders on the
# crpd and gossip planes).
test-faults:
	$(GO) test -race -run 'Degradation|Faults|WrapPacketConn|Scenario|Storm|Probe|LDNS|MapEpoch|Activation|Clock|Gossip' ./internal/faults/ ./internal/experiment/
	$(GO) test -race -run 'Retransmit|SurvivesDuplicated|UnderDup|UnderTotal|Decode|Hostile|Boundary' ./internal/dnsserver/ ./internal/crpdaemon/
	$(GO) test -fuzz FuzzUnpack -fuzztime 10s ./internal/dnswire/
	$(GO) test -fuzz FuzzDecodeRequest -fuzztime 10s ./internal/crpdaemon/
	$(GO) test -fuzz FuzzDecodePeerMsg -fuzztime 10s ./internal/peering/
	$(GO) test -fuzz FuzzDecodeBinaryRequest -fuzztime 10s ./internal/crpdaemon/
	$(GO) test -fuzz FuzzDecodeBinaryPeerMsg -fuzztime 10s ./internal/peering/
	$(GO) test -fuzz FuzzDecodeScenario -fuzztime 10s ./internal/scenario/
	$(GO) test -fuzz FuzzDecodeDriftConfig -fuzztime 10s ./internal/drift/

# test-scenario runs the declarative scenario runner's suite under the race
# detector: plan decode/validation tables, arrival-process determinism and
# rate-accuracy properties, the mem-transport byte-identical rerun tests,
# and the paced 3-daemon real-UDP smoke — then a short fuzz smoke over the
# plan decoder.
test-scenario:
	$(GO) test -race ./internal/scenario/
	$(GO) test -fuzz FuzzDecodeScenario -fuzztime 10s ./internal/scenario/

# test-drift runs the CDN-change detector suite under the race detector:
# config decode/validation tables, same-seed byte-identity, hysteresis and
# churn-rejection unit tests, the truth-schedule compiler's pinned windows,
# the daemon's drift-status op over both codecs, and the end-to-end
# precision/recall gate run — then a short fuzz smoke over the config
# decoder.
test-drift:
	$(GO) test -race ./internal/drift/ ./crp/ -run 'Drift|Detector|Config'
	$(GO) test -race ./internal/faults/ -run 'Event|Schedule'
	$(GO) test -race ./internal/crpdaemon/ -run 'Drift'
	$(GO) test -race ./internal/experiment/ -run 'Drift'
	$(GO) test -fuzz FuzzDecodeDriftConfig -fuzztime 10s ./internal/drift/

vet:
	$(GO) vet ./...

# fmt fails when any file diverges from gofmt, printing the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# check is the pre-merge gate: formatting, static analysis, then the full
# suite under the race detector (the crp package runs real goroutine fan-out
# in its query and clustering paths).
check: fmt vet race
