package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netsim"
)

func TestRunWritesLoadableJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-seed", "3", "-clients", "30", "-candidates", "10", "-replicas", "40"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	topo, err := netsim.LoadJSON(&buf)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if got := len(topo.Clients()); got != 30 {
		t.Errorf("clients = %d, want 30", got)
	}
	if got := len(topo.Replicas()); got != 40 {
		t.Errorf("replicas = %d, want 40", got)
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := run([]string{"-clients", "10", "-candidates", "5", "-replicas", "20", "-o", path}, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := netsim.LoadJSON(f); err != nil {
		t.Errorf("written file not loadable: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, nil); err == nil {
		t.Error("unknown flag should fail")
	}
}
