// Command topodump generates a simulation topology and writes it as JSON to
// stdout (or a file), for external analysis — plotting host placements,
// inspecting AS structure, or hand-crafting regression scenarios that
// netsim.LoadJSON can replay.
//
// Usage:
//
//	topodump [-seed N] [-clients N] [-candidates N] [-replicas N] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/netsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topodump:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	flags := flag.NewFlagSet("topodump", flag.ContinueOnError)
	seed := flags.Int64("seed", 1, "simulation seed")
	clients := flags.Int("clients", 0, "number of client hosts (0 = default)")
	candidates := flags.Int("candidates", 0, "number of candidate servers (0 = default)")
	replicas := flags.Int("replicas", 0, "number of CDN replicas (0 = default)")
	out := flags.String("o", "", "output file (default stdout)")
	if err := flags.Parse(args); err != nil {
		return err
	}

	params := netsim.DefaultParams()
	params.Seed = *seed
	if *clients > 0 {
		params.NumClients = *clients
	}
	if *candidates > 0 {
		params.NumCandidates = *candidates
	}
	if *replicas > 0 {
		params.NumReplicas = *replicas
	}
	topo, err := netsim.Generate(params)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return topo.WriteJSON(w)
}
