package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// runScenario executes a declarative JSON plan against a real daemon mesh
// (see internal/scenario and scenarios/README.md). -out gets the full
// report with provenance; -det-out gets the timing-independent slice alone,
// byte-identical across same-seed reruns, for CI determinism gates. A
// failed envelope gate is a nonzero exit after the reports are written, so
// CI keeps the evidence.
func runScenario(planPath, out, detOut string) error {
	raw, err := os.ReadFile(planPath)
	if err != nil {
		return fmt.Errorf("read plan: %w", err)
	}
	p, err := scenario.DecodePlan(raw)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %s transport, %d daemons, %d groups, %d ticks, seed %d\n",
		p.Name, p.Transport, p.Daemons, len(p.Groups), p.Ticks(), p.Seed)

	rep, err := scenario.Run(p, scenario.Options{
		Registry: obs.Default(),
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(renderScenarioReport(rep))

	scale := map[string]int64{
		"daemons": int64(p.Daemons),
		"ticks":   int64(p.Ticks()),
		"groups":  int64(len(p.Groups)),
	}
	for _, g := range rep.Det.Groups {
		scale["size_"+g.Name] = int64(g.Size)
	}
	full := struct {
		Meta   benchMeta        `json:"meta"`
		Report *scenario.Report `json:"report"`
	}{newBenchMeta("scenario", int64(p.Seed), false, scale), rep}
	if err := writeReport(out, full); err != nil {
		return err
	}
	if err := writeReport(detOut, rep.Det); err != nil {
		return err
	}
	dumpObs("scenario " + p.Name)

	if !rep.AllPass() {
		var gates []string
		for _, v := range rep.FailedGates() {
			gates = append(gates, fmt.Sprintf("%s (%s)", v.Gate, v.Detail))
		}
		return fmt.Errorf("envelope gates failed: %s", strings.Join(gates, "; "))
	}
	return nil
}

func renderScenarioReport(rep *scenario.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n%-14s %-11s %10s %10s %8s %10s %10s\n",
		"group", "kind", "offered", "completed", "errored", "p50 ms", "p99 ms")
	timing := make(map[string]scenario.GroupTiming, len(rep.Timing.Groups))
	for _, gt := range rep.Timing.Groups {
		timing[gt.Name] = gt
	}
	for _, g := range rep.Det.Groups {
		gt := timing[g.Name]
		fmt.Fprintf(&b, "%-14s %-11s %10d %10d %8d %10.3f %10.3f\n",
			g.Name, g.Kind, g.Offered, g.Completed, g.Errored, gt.P50Ms, gt.P99Ms)
	}
	if rep.Det.Daemons > 1 {
		fmt.Fprintf(&b, "\nmesh: converged=%v", rep.Det.Converged)
		if rep.Det.ConvergeRounds > 0 {
			fmt.Fprintf(&b, " after %d extra rounds", rep.Det.ConvergeRounds)
		}
		if rep.Timing.ConvergeWaitMs > 0 {
			fmt.Fprintf(&b, " after %.0fms", rep.Timing.ConvergeWaitMs)
		}
		b.WriteString("\n")
	}
	if rep.Det.DriftFrames > 0 {
		fmt.Fprintf(&b, "\ndrift: %d frames, %d events\n", rep.Det.DriftFrames, len(rep.Det.DriftEvents))
		for _, ev := range rep.Det.DriftEvents {
			fmt.Fprintf(&b, "  %s %s/%s frame %d score %.2f\n", ev.Kind, ev.NS, ev.Group, ev.Frame, ev.Score)
		}
	}
	verdicts := append(append([]scenario.Verdict{}, rep.Det.Verdicts...), rep.Timing.Verdicts...)
	if len(verdicts) > 0 {
		b.WriteString("\nenvelope:\n")
		for _, v := range verdicts {
			mark := "PASS"
			if !v.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  [%s] %-24s %s\n", mark, v.Gate, v.Detail)
		}
	}
	fmt.Fprintf(&b, "\nwall time %.0fms\n", rep.Timing.WallMs)
	return b.String()
}
