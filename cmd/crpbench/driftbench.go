// The drift bench scores the CDN-change detector end to end
// (experiment.RunDrift): a two-member fleet redirects a client population
// while the fault plane flaps or freezes the secondary CDN's mapping on a
// known schedule, and the detector's alarms are joined against the
// compiled ground-truth event schedule for precision, recall and detection
// latency across detector sensitivity × fault intensity. The run is
// self-gating: it fails unless the default sensitivity hits the
// precision/recall bars and the churn-only cell stays alarm-free. The
// report lands in BENCH_drift.json via make bench; the -det-out slice is
// byte-identical across same-seed reruns, which CI gates on with cmp.
package main

import (
	"fmt"

	"repro/internal/experiment"
)

// driftReport is the BENCH_drift.json payload.
type driftReport struct {
	Meta    benchMeta                `json:"meta"`
	Outcome *experiment.DriftOutcome `json:"outcome"`
}

// driftDetReport is the -det-out payload: the outcome alone. It carries no
// timings or host provenance, so same-seed reruns are byte-identical.
type driftDetReport struct {
	Seed    int64                    `json:"seed"`
	Quick   bool                     `json:"quick"`
	Outcome *experiment.DriftOutcome `json:"outcome"`
}

// runDriftBench sweeps the detector and enforces its quality gates. Quick
// mode trims the sweep to the default sensitivity; the gated cells always
// run at full scale, so the gates mean the same thing either way.
func runDriftBench(quick bool, seed int64, out, detOut string) error {
	p := experiment.DefaultDriftParams()
	p.Seed = seed
	if quick {
		p.Sensitivities = []float64{p.DefaultSensitivity}
	}
	outc, err := experiment.RunDrift(p)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderDrift(outc))

	report := driftReport{Meta: newBenchMeta("drift", seed, quick, map[string]int64{
		"clients":         int64(p.NumClients),
		"replicas":        int64(p.NumReplicas),
		"ticks":           int64(p.Ticks),
		"ticks_per_frame": int64(p.TicksPerFrame),
		"sensitivities":   int64(len(p.Sensitivities)),
	}), Outcome: outc}
	if err := writeReport(detOut, driftDetReport{Seed: seed, Quick: quick, Outcome: outc}); err != nil {
		return err
	}
	dumpObs("drift bench")
	if err := writeReport(out, report); err != nil {
		return err
	}
	if !outc.AllPass {
		return fmt.Errorf("drift detector gates failed:\n%s", experiment.RenderDrift(outc))
	}
	return nil
}
