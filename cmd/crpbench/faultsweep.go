// The faults experiment is not from the paper: it sweeps the deterministic
// fault-injection plane (internal/faults) across probe-loss rates and CDN
// map-staleness windows, and reports how far closest-node accuracy and SMF
// cluster quality degrade from the clean baseline at each point. Every cell
// is a full clean-vs-faulted degradation run (internal/experiment), so the
// sweep answers the operational question the paper's clean-room evaluation
// leaves open: how much substrate misbehaviour can CRP absorb before its
// positioning signal goes dark? The report lands in BENCH_faults.json via
// make bench; reruns with the same seed are byte-identical.
package main

import (
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/faults"
)

// faultCell is one sweep point: a loss rate crossed with a freeze window.
type faultCell struct {
	LossRate      float64 `json:"loss_rate"`
	FreezeMinutes int     `json:"freeze_minutes"`
	// Activations records, per fault kind, how often the plane fired in
	// this cell (zero rows inject nothing and serve as baselines).
	Activations map[faults.Kind]uint64        `json:"activations,omitempty"`
	Clean       experiment.DegradationMetrics `json:"clean"`
	Faulted     experiment.DegradationMetrics `json:"faulted"`
}

// faultsReport is the BENCH_faults.json payload.
type faultsReport struct {
	Meta  benchMeta   `json:"meta"`
	Cells []faultCell `json:"cells"`
}

// runFaultSweep runs the loss-rate x staleness-window degradation sweep.
func runFaultSweep(quick bool, seed int64, out string) error {
	params := experiment.ScenarioParams{Seed: seed, NumClients: 60, NumCandidates: 80, NumReplicas: 200}
	schedule := experiment.ProbeSchedule{Interval: 10 * time.Minute, Probes: 12}
	lossRates := []float64{0, 0.1, 0.3, 0.5}
	freezeMins := []int{0, 20, 40}
	if quick {
		params = experiment.ScenarioParams{Seed: seed, NumClients: 25, NumCandidates: 30, NumReplicas: 80}
		schedule.Probes = 8
		lossRates = []float64{0, 0.3}
		freezeMins = []int{0, 20}
	}

	fmt.Printf("faults sweep: %d clients, %d candidates, %d probes; %d loss rates x %d freeze windows\n",
		params.NumClients, params.NumCandidates, schedule.Probes, len(lossRates), len(freezeMins))

	report := faultsReport{Meta: newBenchMeta("faults", seed, quick, map[string]int64{
		"clients":        int64(params.NumClients),
		"candidates":     int64(params.NumCandidates),
		"replicas":       int64(params.NumReplicas),
		"probes":         int64(schedule.Probes),
		"loss_rates":     int64(len(lossRates)),
		"freeze_windows": int64(len(freezeMins)),
	})}

	fmt.Printf("\n%-10s %-12s %14s %14s %12s %12s\n",
		"loss", "staleness", "top1 clean", "top1 faulted", "no-signal", "good-frac")
	for _, loss := range lossRates {
		for _, fm := range freezeMins {
			sc := faults.Scenario{Seed: uint64(seed)*1000 + uint64(fm)}
			if loss > 0 {
				sc.Faults = append(sc.Faults, faults.Fault{Kind: faults.ProbeLoss, Rate: loss})
			}
			if fm > 0 {
				// Freeze the CDN map for fm minutes starting mid-schedule,
				// emulating staleness across many TTL windows.
				start := schedule.End() / 3
				sc.Faults = append(sc.Faults, faults.Fault{
					Kind:  faults.CDNFreeze,
					Start: faults.Duration(start),
					Stop:  faults.Duration(start + time.Duration(fm)*time.Minute),
				})
			}
			outc, err := experiment.RunDegradation(experiment.DegradationConfig{
				Params:   params,
				Schedule: schedule,
				Faults:   sc,
			})
			if err != nil {
				return fmt.Errorf("faults sweep (loss=%.2f, freeze=%dm): %w", loss, fm, err)
			}
			cell := faultCell{
				LossRate:      loss,
				FreezeMinutes: fm,
				Activations:   outc.Activations,
				Clean:         outc.Clean,
				Faulted:       outc.Faulted,
			}
			if len(cell.Activations) == 0 {
				cell.Activations = nil
			}
			report.Cells = append(report.Cells, cell)
			fmt.Printf("%-10.2f %-12s %14.2f %14.2f %12.3f %12.3f\n",
				loss, fmt.Sprintf("%dm", fm),
				outc.Clean.MeanTop1Rank, outc.Faulted.MeanTop1Rank,
				outc.Faulted.FracNoSignal, outc.Faulted.GoodClusterFrac)
		}
	}
	dumpObs("faults sweep")
	return writeReport(out, report)
}
