package main

import "runtime"

// benchMeta is the provenance block embedded in every BENCH_*.json crpbench
// emits. Bench files used to be bare numbers, which made trajectory
// comparisons across commits guesswork: a regression is indistinguishable
// from a run at a different scale, seed, or host width. Every report now
// records exactly how it was produced.
type benchMeta struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Quick      bool   `json:"quick"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	// Scale holds the experiment-specific size knobs (node counts, client
	// counts, durations in seconds) the run actually used, post -quick and
	// flag overrides.
	Scale map[string]int64 `json:"scale,omitempty"`
}

// newBenchMeta captures the run's provenance. Scale knobs are added by the
// experiment before the report is written.
func newBenchMeta(experiment string, seed int64, quick bool) benchMeta {
	return benchMeta{
		Experiment: experiment,
		Seed:       seed,
		Quick:      quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Scale:      make(map[string]int64),
	}
}
