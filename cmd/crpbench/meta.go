package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// benchMeta is the provenance block embedded in every BENCH_*.json crpbench
// emits. Bench files used to be bare numbers, which made trajectory
// comparisons across commits guesswork: a regression is indistinguishable
// from a run at a different scale, seed, or host width. Every report now
// records exactly how it was produced.
type benchMeta struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Quick      bool   `json:"quick"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	// Scale holds the experiment-specific size knobs (node counts, client
	// counts, durations in seconds) the run actually used, post -quick and
	// flag overrides.
	Scale map[string]int64 `json:"scale,omitempty"`
}

// newBenchMeta captures the run's provenance. scale holds the
// experiment-specific size knobs actually used (post -quick and flag
// overrides); it is stored as-is, so callers may keep adding to it until
// the report is written.
func newBenchMeta(experiment string, seed int64, quick bool, scale map[string]int64) benchMeta {
	if scale == nil {
		scale = make(map[string]int64)
	}
	return benchMeta{
		Experiment: experiment,
		Seed:       seed,
		Quick:      quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Scale:      scale,
	}
}

// writeReport marshals a bench report to indented JSON (trailing newline, so
// reruns diff cleanly against checked-in files) and writes it to out. A
// no-op when out is empty: every experiment accepts -out optionally.
func writeReport(out string, report any) error {
	if out == "" {
		return nil
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}
