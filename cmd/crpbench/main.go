// Command crpbench regenerates every table and figure from the CRP paper's
// evaluation, plus this repository's ablations, on the simulated wide-area
// substrate. Each experiment prints the same rows/series the paper reports.
//
// Usage:
//
//	crpbench -exp list
//	crpbench [-exp NAME] [-quick] [-seed N] [-nodes N] [-out FILE] [-det-out FILE] [-plan FILE]
//
// Experiments register in the table in registry.go; -exp list prints every
// registered experiment with the flags it accepts. The paper experiments
// (fig4..ablations, or all) share one simulated-scenario build. The
// standalone experiments are this repository's own: kernels compares the
// map-based similarity path against the compiled-vector kernel; crpd
// stress-benchmarks the positioning daemon over loopback UDP; churn
// interleaves continuous Observe load with concurrent query load across
// store designs; faults sweeps the deterministic fault-injection plane;
// gossip sweeps the multi-daemon peering plane across fanout x packet loss;
// scale ingests a million-client population with prefix aggregation on and
// off; fusion scores the fused multi-CDN kernel against single-CDN paths;
// scenario drives a real daemon mesh from a declarative JSON plan (see
// scenarios/README.md) and gates it on the plan's envelope.
//
// Every experiment dumps the process-wide obs metrics snapshot when it
// finishes, so each run leaves instrumentation data alongside its tables.
//
// The default configuration matches the paper's scale (1,000 client DNS
// servers, 240 candidate servers); -quick runs a reduced configuration for
// a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crpbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crpbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run, or 'list' to enumerate them")
	a := benchArgs{}
	fs.BoolVar(&a.quick, "quick", false, "run a reduced-scale configuration")
	fs.Int64Var(&a.seed, "seed", 1, "simulation seed")
	fs.IntVar(&a.nodes, "nodes", 0, "override the churn experiment's node count (0 = default scale)")
	fs.StringVar(&a.out, "out", "", "write the experiment's report JSON to this file")
	fs.StringVar(&a.detOut, "det-out", "", "also write the timing-independent report slice to this file (for same-seed determinism checks)")
	fs.StringVar(&a.plan, "plan", "", "scenario experiment: the JSON plan file to run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *exp == "list" {
		fmt.Print(renderExperimentList())
		return nil
	}
	spec := findExperiment(*exp)
	if spec == nil {
		return fmt.Errorf("unknown experiment %q (want one of: %s, or list)",
			*exp, strings.Join(experimentNames(), " "))
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := spec.validateFlags(set); err != nil {
		return err
	}
	if !spec.paper {
		return spec.run(a)
	}
	return runPaper(*exp, a)
}

// runPaper executes the paper experiments off one shared scenario build;
// exp "all" runs every figure in sequence.
func runPaper(exp string, a benchArgs) error {
	params := experiment.DefaultScenarioParams()
	params.Seed = a.seed
	sweepCfg := experiment.RankSweepConfig{}
	probeCfg := experiment.ClosestNodeConfig{}
	clusterCfg := experiment.ClusteringConfig{SecondPass: true}
	if a.quick {
		// Keep the candidate density close to the paper's: CRP's Top-K
		// averaging needs several candidates per metro to be meaningful.
		params.NumClients = 150
		params.NumCandidates = 240
		params.NumReplicas = 500
		sweepCfg.Duration = 2 * 24 * time.Hour
		sweepCfg.CandidateInterval = 30 * time.Minute
		probeCfg.Schedule = experiment.ProbeSchedule{Interval: 10 * time.Minute, Probes: 36}
		clusterCfg.NumNodes = 100
		clusterCfg.Schedule = probeCfg.Schedule
	}

	fmt.Printf("building scenario: %d clients, %d candidates, %d replicas, seed %d\n",
		params.NumClients, params.NumCandidates, params.NumReplicas, params.Seed)
	start := time.Now()
	sc, err := experiment.NewScenario(params)
	if err != nil {
		return err
	}
	fmt.Printf("scenario ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	want := func(name string) bool { return exp == "all" || exp == name }

	var closest *experiment.ClosestNodeOutcome
	if want("fig4") || want("fig5") {
		closest, err = sc.RunClosestNode(probeCfg)
		if err != nil {
			return fmt.Errorf("closest-node experiment: %w", err)
		}
	}
	if want("fig4") {
		fmt.Println(experiment.RenderFig4(closest))
	}
	if want("fig5") {
		fmt.Println(experiment.RenderFig5(closest))
	}
	if want("fig4") || want("fig5") {
		dumpObs("closest-node experiment")
	}

	if want("table1") || want("fig6") || want("fig7") {
		clusters, err := sc.RunClustering(clusterCfg)
		if err != nil {
			return fmt.Errorf("clustering experiment: %w", err)
		}
		if want("table1") {
			fmt.Println(experiment.RenderTable1(clusters))
		}
		if want("fig6") {
			fmt.Println(experiment.RenderFig6(clusters))
		}
		if want("fig7") {
			fmt.Println(experiment.RenderFig7(clusters))
		}
		dumpObs("clustering experiment")
	}

	if want("fig8") {
		intervals := []time.Duration{20 * time.Minute, 100 * time.Minute, 500 * time.Minute, 2000 * time.Minute}
		series, err := sc.RunProbeIntervalSweep(intervals, sweepCfg)
		if err != nil {
			return fmt.Errorf("probe-interval sweep: %w", err)
		}
		fmt.Println(experiment.RenderRankSeries(
			"Fig. 8 — average rank vs probe interval (lower rank is better)", series))
		dumpObs("probe-interval sweep")
	}

	if want("fig9") {
		series, err := sc.RunWindowSweep([]int{0, 30, 10, 5}, 10*time.Minute, sweepCfg)
		if err != nil {
			return fmt.Errorf("window sweep: %w", err)
		}
		fmt.Println(experiment.RenderRankSeries(
			"Fig. 9 — average rank vs probe window size", series))
		dumpObs("window sweep")
	}

	if want("repair") {
		repairCfg := experiment.RepairConfig{Schedule: probeCfg.Schedule}
		if a.quick {
			repairCfg.NumPaths = 60
		}
		outcome, err := sc.RunPathRepair(repairCfg)
		if err != nil {
			return fmt.Errorf("path repair: %w", err)
		}
		fmt.Println(experiment.RenderPathRepair(outcome))
		dumpObs("path repair")
	}

	if want("sec6") {
		rows, err := sc.RunNameSelection(30, 10)
		if err != nil {
			return fmt.Errorf("name selection: %w", err)
		}
		fmt.Println(experiment.RenderNameSelection(rows))
		fmt.Println(experiment.RenderOverhead(experiment.OverheadTable(0, []time.Duration{
			10 * time.Minute, 100 * time.Minute, 2000 * time.Minute,
		})))
		points, err := sc.RunBootstrap(experiment.BootstrapConfig{})
		if err != nil {
			return fmt.Errorf("bootstrap study: %w", err)
		}
		fmt.Println(experiment.RenderBootstrap(points, 10*time.Minute))
		dumpObs("sec6 studies")
	}

	if want("ablations") {
		if err := runAblations(sc, params, probeCfg, clusterCfg); err != nil {
			return err
		}
		dumpObs("ablations")
	}

	fmt.Printf("total runtime %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runAblations(sc *experiment.Scenario, params experiment.ScenarioParams,
	probeCfg experiment.ClosestNodeConfig, clusterCfg experiment.ClusteringConfig) error {

	rows, err := sc.RunSimilarityAblation(probeCfg)
	if err != nil {
		return fmt.Errorf("similarity ablation: %w", err)
	}
	fmt.Println(experiment.RenderSimilarityAblation(rows))

	centers, err := sc.RunCenterAblation(clusterCfg)
	if err != nil {
		return fmt.Errorf("center ablation: %w", err)
	}
	fmt.Println(experiment.RenderCenterAblation(centers))

	base := params
	counts := []int{params.NumReplicas / 4, params.NumReplicas / 2, params.NumReplicas, params.NumReplicas * 2}
	points, err := experiment.RunCoverageSweep(base, counts, probeCfg)
	if err != nil {
		return fmt.Errorf("coverage sweep: %w", err)
	}
	fmt.Println(experiment.RenderCoverageSweep(points))

	baselines, err := sc.RunBaselineComparison(probeCfg)
	if err != nil {
		return fmt.Errorf("baseline comparison: %w", err)
	}
	fmt.Println(experiment.RenderBaselineComparison(baselines))

	stability, err := sc.RunClusterStability(experiment.StabilityConfig{})
	if err != nil {
		return fmt.Errorf("cluster stability: %w", err)
	}
	fmt.Println(experiment.RenderClusterStability(stability))
	return nil
}
