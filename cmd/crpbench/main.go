// Command crpbench regenerates every table and figure from the CRP paper's
// evaluation, plus this repository's ablations, on the simulated wide-area
// substrate. Each experiment prints the same rows/series the paper reports.
//
// Usage:
//
//	crpbench [-exp all|fig4|fig5|table1|fig6|fig7|fig8|fig9|repair|sec6|ablations|kernels|crpd|churn|faults|gossip|scale|fusion] [-quick] [-seed N] [-nodes N] [-out FILE] [-det-out FILE]
//
// The kernels, crpd, churn and faults experiments are not from the paper:
// kernels compares the map-based similarity path (Dot + two Norms per pair)
// against the compiled-vector kernel the query surface runs on, at service
// scale; crpd stress-benchmarks the positioning daemon over loopback UDP,
// comparing cheap-op latency with and without concurrent SMF clustering
// load; churn interleaves a continuous Observe stream with concurrent
// TopK/SameCluster query load against both the sharded tracker store and
// the single-snapshot baseline, reporting query p50/p99 and
// snapshot-rebuild counts; faults sweeps the deterministic fault-injection
// plane across probe-loss rates and CDN map-staleness windows and reports
// the accuracy degradation at each point; gossip sweeps the multi-daemon
// peering plane across rumor fanout and gossip-link packet loss and reports
// convergence rounds and replication fidelity; scale ingests a million-client
// population with prefix aggregation on and off, reporting state reduction,
// closest-node rank deltas versus the per-client baseline, and query p99
// under concurrent ingest (-det-out additionally writes the
// timing-independent slice of the report for determinism checks); fusion
// runs the multi-CDN evaluation — a two-member cdn.Fleet redirects the same
// population, and the fused similarity kernel is scored against each
// single-CDN path on closest-node rank and SMF clustering quality across
// replica-density and coverage-sparsity cells, with a built-in gate that the
// 1-namespace configuration stays bit-identical to the pre-fusion path. All
// seven write their report JSON (with provenance metadata) to -out.
//
// Every experiment dumps the process-wide obs metrics snapshot when it
// finishes, so each run leaves instrumentation data alongside its tables.
//
// The default configuration matches the paper's scale (1,000 client DNS
// servers, 240 candidate servers); -quick runs a reduced configuration for
// a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crpbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crpbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run: all, fig4, fig5, table1, fig6, fig7, fig8, fig9, repair, sec6, ablations, kernels, crpd, churn, faults, gossip, scale, fusion")
	quick := fs.Bool("quick", false, "run a reduced-scale configuration")
	seed := fs.Int64("seed", 1, "simulation seed")
	nodes := fs.Int("nodes", 0, "override the churn experiment's node count (0 = default scale)")
	out := fs.String("out", "", "write the bench report JSON (crpd, churn) to this file")
	detOut := fs.String("det-out", "", "scale experiment: also write the timing-independent report slice to this file (for same-seed determinism checks)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The kernel comparison, the daemon stress bench and the store churn
	// bench are pure micro-benchmarks: no scenario build.
	if *exp == "kernels" {
		return runKernels(*quick)
	}
	if *exp == "crpd" {
		return runCrpdBench(*quick, *seed, *out)
	}
	if *exp == "churn" {
		return runChurn(*quick, *seed, *nodes, *out)
	}
	if *exp == "faults" {
		return runFaultSweep(*quick, *seed, *out)
	}
	if *exp == "gossip" {
		return runGossipBench(*quick, *seed, *out)
	}
	if *exp == "scale" {
		return runScale(*quick, *seed, *out, *detOut)
	}
	if *exp == "fusion" {
		return runFusion(*quick, *seed, *out)
	}

	params := experiment.DefaultScenarioParams()
	params.Seed = *seed
	sweepCfg := experiment.RankSweepConfig{}
	probeCfg := experiment.ClosestNodeConfig{}
	clusterCfg := experiment.ClusteringConfig{SecondPass: true}
	if *quick {
		// Keep the candidate density close to the paper's: CRP's Top-K
		// averaging needs several candidates per metro to be meaningful.
		params.NumClients = 150
		params.NumCandidates = 240
		params.NumReplicas = 500
		sweepCfg.Duration = 2 * 24 * time.Hour
		sweepCfg.CandidateInterval = 30 * time.Minute
		probeCfg.Schedule = experiment.ProbeSchedule{Interval: 10 * time.Minute, Probes: 36}
		clusterCfg.NumNodes = 100
		clusterCfg.Schedule = probeCfg.Schedule
	}

	fmt.Printf("building scenario: %d clients, %d candidates, %d replicas, seed %d\n",
		params.NumClients, params.NumCandidates, params.NumReplicas, params.Seed)
	start := time.Now()
	sc, err := experiment.NewScenario(params)
	if err != nil {
		return err
	}
	fmt.Printf("scenario ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	var closest *experiment.ClosestNodeOutcome
	if want("fig4") || want("fig5") {
		ran = true
		closest, err = sc.RunClosestNode(probeCfg)
		if err != nil {
			return fmt.Errorf("closest-node experiment: %w", err)
		}
	}
	if want("fig4") {
		fmt.Println(experiment.RenderFig4(closest))
	}
	if want("fig5") {
		fmt.Println(experiment.RenderFig5(closest))
	}
	if want("fig4") || want("fig5") {
		dumpObs("closest-node experiment")
	}

	if want("table1") || want("fig6") || want("fig7") {
		ran = true
		clusters, err := sc.RunClustering(clusterCfg)
		if err != nil {
			return fmt.Errorf("clustering experiment: %w", err)
		}
		if want("table1") {
			fmt.Println(experiment.RenderTable1(clusters))
		}
		if want("fig6") {
			fmt.Println(experiment.RenderFig6(clusters))
		}
		if want("fig7") {
			fmt.Println(experiment.RenderFig7(clusters))
		}
		dumpObs("clustering experiment")
	}

	if want("fig8") {
		ran = true
		intervals := []time.Duration{20 * time.Minute, 100 * time.Minute, 500 * time.Minute, 2000 * time.Minute}
		series, err := sc.RunProbeIntervalSweep(intervals, sweepCfg)
		if err != nil {
			return fmt.Errorf("probe-interval sweep: %w", err)
		}
		fmt.Println(experiment.RenderRankSeries(
			"Fig. 8 — average rank vs probe interval (lower rank is better)", series))
		dumpObs("probe-interval sweep")
	}

	if want("fig9") {
		ran = true
		series, err := sc.RunWindowSweep([]int{0, 30, 10, 5}, 10*time.Minute, sweepCfg)
		if err != nil {
			return fmt.Errorf("window sweep: %w", err)
		}
		fmt.Println(experiment.RenderRankSeries(
			"Fig. 9 — average rank vs probe window size", series))
		dumpObs("window sweep")
	}

	if want("repair") {
		ran = true
		repairCfg := experiment.RepairConfig{Schedule: probeCfg.Schedule}
		if *quick {
			repairCfg.NumPaths = 60
		}
		outcome, err := sc.RunPathRepair(repairCfg)
		if err != nil {
			return fmt.Errorf("path repair: %w", err)
		}
		fmt.Println(experiment.RenderPathRepair(outcome))
		dumpObs("path repair")
	}

	if want("sec6") {
		ran = true
		rows, err := sc.RunNameSelection(30, 10)
		if err != nil {
			return fmt.Errorf("name selection: %w", err)
		}
		fmt.Println(experiment.RenderNameSelection(rows))
		fmt.Println(experiment.RenderOverhead(experiment.OverheadTable(0, []time.Duration{
			10 * time.Minute, 100 * time.Minute, 2000 * time.Minute,
		})))
		points, err := sc.RunBootstrap(experiment.BootstrapConfig{})
		if err != nil {
			return fmt.Errorf("bootstrap study: %w", err)
		}
		fmt.Println(experiment.RenderBootstrap(points, 10*time.Minute))
		dumpObs("sec6 studies")
	}

	if want("ablations") {
		ran = true
		if err := runAblations(sc, params, probeCfg, clusterCfg); err != nil {
			return err
		}
		dumpObs("ablations")
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q (want one of: all fig4 fig5 table1 fig6 fig7 fig8 fig9 repair sec6 ablations kernels crpd churn faults gossip scale fusion)", *exp)
	}
	fmt.Printf("total runtime %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runAblations(sc *experiment.Scenario, params experiment.ScenarioParams,
	probeCfg experiment.ClosestNodeConfig, clusterCfg experiment.ClusteringConfig) error {

	rows, err := sc.RunSimilarityAblation(probeCfg)
	if err != nil {
		return fmt.Errorf("similarity ablation: %w", err)
	}
	fmt.Println(experiment.RenderSimilarityAblation(rows))

	centers, err := sc.RunCenterAblation(clusterCfg)
	if err != nil {
		return fmt.Errorf("center ablation: %w", err)
	}
	fmt.Println(experiment.RenderCenterAblation(centers))

	base := params
	counts := []int{params.NumReplicas / 4, params.NumReplicas / 2, params.NumReplicas, params.NumReplicas * 2}
	points, err := experiment.RunCoverageSweep(base, counts, probeCfg)
	if err != nil {
		return fmt.Errorf("coverage sweep: %w", err)
	}
	fmt.Println(experiment.RenderCoverageSweep(points))

	baselines, err := sc.RunBaselineComparison(probeCfg)
	if err != nil {
		return fmt.Errorf("baseline comparison: %w", err)
	}
	fmt.Println(experiment.RenderBaselineComparison(baselines))

	stability, err := sc.RunClusterStability(experiment.StabilityConfig{})
	if err != nil {
		return fmt.Errorf("cluster stability: %w", err)
	}
	fmt.Println(experiment.RenderClusterStability(stability))
	return nil
}
