// The churn experiment is not from the paper: it answers the scaling
// question behind the sharded tracker store. A deployed CRP service ingests
// a continuous stream of redirection observations while serving position
// queries; with a single compiled all-nodes snapshot, every Observe
// invalidates the snapshot globally and every query repays an O(N)
// recompile. The experiment runs the identical interleaved ingest-vs-query
// workload against both store shapes — the sharded store (production
// default) and a single-shard full-rebuild store (the pre-sharding
// baseline) — in the same process and reports query p50/p99, SameCluster
// latency under ingestion, and the snapshot-rebuild counters that explain
// the difference. The report lands in BENCH_churn.json via make bench.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/crp"
	"repro/internal/obs"
)

// churnModeReport is one store shape's half of the comparison.
type churnModeReport struct {
	Mode             string  `json:"mode"`
	Nodes            int     `json:"nodes"`
	Observes         int64   `json:"observes"`
	ObservesPerSec   float64 `json:"observes_per_sec"`
	Queries          int     `json:"queries"`
	QueriesPerSec    float64 `json:"queries_per_sec"`
	QueryMeanMicros  float64 `json:"query_mean_us"`
	QueryP50Micros   float64 `json:"query_p50_us"`
	QueryP90Micros   float64 `json:"query_p90_us"`
	QueryP99Micros   float64 `json:"query_p99_us"`
	SameClusterRuns  int     `json:"same_cluster_runs"`
	SameClusterMean  float64 `json:"same_cluster_mean_ms"`
	SnapshotHits     uint64  `json:"snapshot_hits"`
	SnapshotRebuilds uint64  `json:"snapshot_rebuilds"`
	ShardRebuilds    uint64  `json:"shard_rebuilds"`
}

// churnReport is the BENCH_churn.json payload.
type churnReport struct {
	Meta           benchMeta       `json:"meta"`
	QueryWorkers   int             `json:"query_workers"`
	IngestTarget   int             `json:"ingest_target_per_sec"`
	PhaseSeconds   float64         `json:"phase_seconds"`
	Single         churnModeReport `json:"single_snapshot"`
	Sharded        churnModeReport `json:"sharded"`
	P99Improvement float64         `json:"query_p99_improvement"`
}

// runChurn benchmarks both store shapes under the interleaved workload.
// nodeCount > 0 overrides the default scale (50k nodes, 4k with -quick).
func runChurn(quick bool, seed int64, nodeCount int, out string) error {
	metros, perMetro := 200, 250 // 50k nodes
	phase := 8 * time.Second
	ingestRate, clusterRuns := 1500, 2
	// One closed-loop query worker per core: like the crpd bench's paced
	// heavy load, running more CPU-bound query loops than cores measures the
	// scheduler's time-slicing, not the store — every extra worker inflates
	// both modes' tails with queueing delay that has nothing to compare.
	queryWorkers := max(runtime.GOMAXPROCS(0), 1)
	if quick {
		metros, perMetro = 40, 100 // 4k nodes
		phase = 2 * time.Second
		clusterRuns = 1
	}
	if nodeCount > 0 {
		metros = max(10, nodeCount/250)
		perMetro = max(1, nodeCount/metros)
	}
	nodes := metros * perMetro

	fmt.Printf("churn bench: %d nodes, %d query workers, ~%d observes/s for %v per mode\n",
		nodes, queryWorkers, ingestRate, phase)

	single, err := runChurnMode("single-snapshot",
		crp.StoreConfig{Shards: 1, FullRebuild: true},
		metros, perMetro, seed, phase, ingestRate, queryWorkers, clusterRuns)
	if err != nil {
		return err
	}
	runtime.GC()
	sharded, err := runChurnMode("sharded",
		crp.StoreConfig{}, // production defaults
		metros, perMetro, seed, phase, ingestRate, queryWorkers, clusterRuns)
	if err != nil {
		return err
	}

	report := churnReport{
		Meta: newBenchMeta("churn", seed, quick, map[string]int64{
			"nodes":                 int64(nodes),
			"metros":                int64(metros),
			"query_workers":         int64(queryWorkers),
			"ingest_target_per_sec": int64(ingestRate),
			"phase_ms":              phase.Milliseconds(),
		}),
		QueryWorkers: queryWorkers,
		IngestTarget: ingestRate,
		PhaseSeconds: phase.Seconds(),
		Single:       single,
		Sharded:      sharded,
	}
	if sharded.QueryP99Micros > 0 {
		report.P99Improvement = single.QueryP99Micros / sharded.QueryP99Micros
	}

	for _, m := range []churnModeReport{single, sharded} {
		fmt.Printf("\n%-16s %7d queries %8.0f q/s  p50 %8.0fus  p90 %8.0fus  p99 %8.0fus\n",
			m.Mode, m.Queries, m.QueriesPerSec, m.QueryP50Micros, m.QueryP90Micros, m.QueryP99Micros)
		fmt.Printf("%-16s %7d observes (%.0f/s)  snapshot hits/rebuilds %d/%d  shard rebuilds %d\n",
			"", m.Observes, m.ObservesPerSec, m.SnapshotHits, m.SnapshotRebuilds, m.ShardRebuilds)
		if m.SameClusterRuns > 0 {
			fmt.Printf("%-16s same_cluster under ingestion: %d runs, mean %.1fms\n",
				"", m.SameClusterRuns, m.SameClusterMean)
		}
	}
	fmt.Printf("\nquery p99 under continuous ingestion: %.0fus -> %.0fus (%.1fx improvement; acceptance target >= 5x)\n",
		single.QueryP99Micros, sharded.QueryP99Micros, report.P99Improvement)
	dumpObs("churn bench")
	return writeReport(out, report)
}

// runChurnMode seeds one service and drives the interleaved workload: a
// paced Observe stream plus closed-loop TopK query workers for the timed
// phase, then a burst of SameCluster queries with ingestion still running.
func runChurnMode(name string, storeCfg crp.StoreConfig, metros, perMetro int,
	seed int64, phase time.Duration, ingestRate, queryWorkers, clusterRuns int) (churnModeReport, error) {

	rep := churnModeReport{Mode: name, Nodes: metros * perMetro}

	svc := crp.NewServiceWithStore(storeCfg, crp.WithWindow(10))
	nodes, err := seedCrpdService(svc, metros, perMetro, seed)
	if err != nil {
		return rep, fmt.Errorf("seeding %s service: %w", name, err)
	}
	// Warm the snapshot path so neither mode pays the cold full compile
	// inside its measured window.
	if _, err := svc.TopK(crp.NodeID(nodes[0]), nil, 5); err != nil {
		return rep, err
	}

	before := obs.Default().Snapshot()

	// Paced ingestion: a continuous Observe stream at ~ingestRate/s, each
	// probe drawn from the same metro-skewed replica distribution the
	// seeding used. Timestamps advance monotonically off a shared counter.
	// Pacing is catch-up batched: each wake sends however many observes are
	// owed by wall clock, so an oversubscribed host (where a sleeping
	// goroutine can lose a whole scheduler quantum per wake) still sustains
	// the target rate instead of collapsing to one observe per quantum. The
	// batch is capped so a long stall (an SMF pass holding the CPU) produces
	// a bounded burst, not a retroactive flood.
	var observes atomic.Int64
	var clock atomic.Int64
	base := time.Unix(1_800_000_000, 0)
	stopIngest := make(chan struct{})
	var ingestErr atomic.Value
	var ingestDone sync.WaitGroup
	maxBatch := max(ingestRate/10, 1)
	ingestDone.Add(1)
	go func() {
		defer ingestDone.Done()
		rng := rand.New(rand.NewSource(seed + 4242))
		ingestStart := time.Now()
		sent := 0
		for {
			select {
			case <-stopIngest:
				return
			default:
			}
			owed := int(time.Since(ingestStart).Seconds()*float64(ingestRate)) - sent
			if owed > maxBatch {
				owed = maxBatch
			}
			for i := 0; i < owed; i++ {
				idx := rng.Intn(len(nodes))
				m := idx / perMetro
				var replica string
				switch r := rng.Float64(); {
				case r < 0.65:
					replica = fmt.Sprintf("m%02d-r0", m)
				case r < 0.85:
					replica = fmt.Sprintf("m%02d-r1", m)
				case r < 0.95:
					replica = fmt.Sprintf("m%02d-r2", m)
				default:
					replica = fmt.Sprintf("m%02d-r0", rng.Intn(metros))
				}
				at := base.Add(time.Duration(clock.Add(1)) * time.Second)
				if err := svc.Observe(crp.NodeID(nodes[idx]), at, crp.ReplicaID(replica)); err != nil {
					ingestErr.Store(err)
					return
				}
			}
			sent += owed
			observes.Add(int64(owed))
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Closed-loop TopK workers for the timed phase.
	deadline := time.Now().Add(phase)
	lats := make([][]time.Duration, queryWorkers)
	qErrs := make([]error, queryWorkers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				client := crp.NodeID(nodes[rng.Intn(len(nodes))])
				qs := time.Now()
				if _, err := svc.TopK(client, nil, 5); err != nil {
					qErrs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(qs))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	phaseObserves := observes.Load()
	var all []time.Duration
	for w := range lats {
		if qErrs[w] != nil {
			close(stopIngest)
			ingestDone.Wait()
			return rep, fmt.Errorf("%s query worker %d: %w", name, w, qErrs[w])
		}
		all = append(all, lats[w]...)
	}

	// SameCluster under the same ingestion stream: the full-SMF query the
	// daemon's heavy pool serves, measured while the snapshot keeps churning.
	var clusterTotal time.Duration
	rng := rand.New(rand.NewSource(seed + 31337))
	for i := 0; i < clusterRuns; i++ {
		node := crp.NodeID(nodes[rng.Intn(len(nodes))])
		cs := time.Now()
		if _, err := svc.SameCluster(node, crp.ClusterConfig{Threshold: crp.DefaultThreshold, SecondPass: true}); err != nil {
			close(stopIngest)
			ingestDone.Wait()
			return rep, fmt.Errorf("%s same_cluster: %w", name, err)
		}
		clusterTotal += time.Since(cs)
	}

	close(stopIngest)
	ingestDone.Wait()
	if e := ingestErr.Load(); e != nil {
		return rep, fmt.Errorf("%s ingest: %w", name, e.(error))
	}
	after := obs.Default().Snapshot()

	p := summarizePhase(all, elapsed)
	rep.Observes = phaseObserves
	rep.ObservesPerSec = float64(phaseObserves) / elapsed.Seconds()
	rep.Queries = p.Requests
	rep.QueriesPerSec = p.PerSecond
	rep.QueryMeanMicros = p.MeanMicros
	rep.QueryP50Micros = p.P50Micros
	rep.QueryP90Micros = p.P90Micros
	rep.QueryP99Micros = p.P99Micros
	rep.SameClusterRuns = clusterRuns
	if clusterRuns > 0 {
		rep.SameClusterMean = clusterTotal.Seconds() * 1e3 / float64(clusterRuns)
	}
	rep.SnapshotHits = counterDelta(before, after, "crp.service.snapshot.hits")
	rep.SnapshotRebuilds = counterDelta(before, after, "crp.service.snapshot.rebuilds")
	rep.ShardRebuilds = counterDelta(before, after, "crp.service.snapshot.shard_rebuilds")
	return rep, nil
}

// counterDelta returns how much a process-wide counter moved between two
// registry snapshots.
func counterDelta(before, after obs.Snapshot, name string) uint64 {
	return after.Counters[name] - before.Counters[name]
}
