// The scale experiment is not from the paper: it answers the million-client
// question behind the aggregation plane (crp/aggregate.go). A deployed CRP
// service cannot afford one tracker per client; the aggregation plane
// collapses clients into per-prefix ratio maps keyed through the internal/asn
// longest-prefix table. This experiment ingests a large simulated client
// population — 1M+ at full scale — under per-client tracking and under
// aggregation at several prefix granularities, and reports, per cell: state
// size (tracked entries, the plane's own byte estimate, and measured heap
// growth per client), ingest rate, query p50/p99 under concurrent ingest, and
// the accuracy cost of serving from aggregates (rank of the aggregate's
// closest-node answer within the per-client baseline ranking, on a sampled
// subset). The report lands in BENCH_scale.json via make bench.
//
// Determinism: ingest is partitioned across a fixed worker count by aggregate
// group, every probe is derived from (seed, client, probe) by a splitmix
// stream, probes carry a single replica (so group weight accumulation is
// order-independent exact float math), and the replica intern order is
// pre-warmed sequentially. The deterministic slice of the results — state
// counts and accuracy, no timings — can be written to -det-out; CI runs the
// quick configuration twice and byte-compares the two files.
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/crp"
	"repro/internal/asn"
	"repro/internal/netsim"
)

const (
	scaleIngestWorkers = 8   // fixed, NOT GOMAXPROCS: partitioning must not depend on the host
	scaleCandidates    = 240 // per-client-tracked candidate servers, the paper's count
	scaleProbesPer     = 8   // probes ingested per client
	scaleSamples       = 400 // accuracy-scored client subset (upper bound)
	scaleMonitorEvery  = 64  // divergence-monitor sampling
	scaleMonitorProbes = 4
	// scaleMinAgreement is set low enough that the structural mixing a
	// coarse granularity causes (a /16 group blending many distinct /24
	// behaviours) does not demote every monitored client — only genuinely
	// divergent clients (agreement near zero) leave their group, so the
	// granularity sweep measures aggregation accuracy, not demotion rate.
	scaleMinAgreement = 0.25
)

// scaleDetCell is the deterministic slice of one cell: everything here must
// be byte-identical across same-seed reruns (CI gates on it). No timings, no
// heap numbers.
type scaleDetCell struct {
	Mode          string  `json:"mode"` // "per-client" or "aggregate"
	PrefixBits    int     `json:"prefix_bits,omitempty"`
	Clients       int     `json:"clients"`
	StoreEntries  int     `json:"store_entries"` // per-client trackers incl. candidates
	Groups        int64   `json:"groups"`
	Demoted       int64   `json:"demoted"`
	Monitors      int64   `json:"monitors"`
	Interned      int64   `json:"interned"`
	StateBytes    int64   `json:"state_bytes"`
	ReductionX    float64 `json:"reduction_x"` // clients per tracked entry (groups+demoted)
	Samples       int     `json:"samples"`
	RankDeltaMean float64 `json:"rank_delta_mean"`
	RankDeltaMax  int     `json:"rank_delta_max"`
	AgreementPct  float64 `json:"agreement_pct"` // samples whose top-1 matches the baseline's
}

// scaleCell is the full BENCH_scale.json cell: the deterministic slice plus
// measured rates, latencies and memory.
type scaleCell struct {
	scaleDetCell
	IngestSeconds      float64 `json:"ingest_seconds"`
	IngestPerSec       float64 `json:"ingest_per_sec"`
	HeapPerClientBytes float64 `json:"heap_per_client_bytes"`
	QueryPhase         struct {
		Queries        int     `json:"queries"`
		QueriesPerSec  float64 `json:"queries_per_sec"`
		P50Micros      float64 `json:"p50_us"`
		P99Micros      float64 `json:"p99_us"`
		IngestObserves int64   `json:"concurrent_observes"`
	} `json:"query_phase"`
}

// scaleReport is the BENCH_scale.json payload.
type scaleReport struct {
	Meta              benchMeta   `json:"meta"`
	Cells             []scaleCell `json:"cells"`
	P99VsPerClient50k float64     `json:"agg_p99_over_per_client_p99_50k"`
}

// scaleDetReport is the -det-out payload.
type scaleDetReport struct {
	Seed  int64          `json:"seed"`
	Quick bool           `json:"quick"`
	Cells []scaleDetCell `json:"cells"`
}

// splitmix64 is the per-(client, probe) derivation stream: no bench-side
// per-client state, so the 1M-client cell costs no memory outside the
// service under test.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// scaleWorld derives the simulated client population: addresses laid out
// over /24s under 10.0.0.0/8, per-/24 and per-/16 behaviour profiles, and a
// ~2% sprinkle of divergent clients with individual profiles.
type scaleWorld struct {
	seed    int64
	clients int
	num24   int // distinct /24s; clients are dealt round-robin across them
}

func newScaleWorld(seed int64, clients int) scaleWorld {
	num24 := clients / 16
	if num24 < 64 {
		num24 = 64
	}
	if num24 > 62000 { // keep inside 10.0.0.0/8 with room for the intern warmup block
		num24 = 62000
	}
	return scaleWorld{seed: seed, clients: clients, num24: num24}
}

// addr returns client i's address: /24 index i%num24, host 1 + i/num24.
func (w scaleWorld) addr(i int) string {
	p24 := i % w.num24
	host := 1 + (i/w.num24)%250
	return fmt.Sprintf("10.%d.%d.%d", (p24>>8)&255, p24&255, host)
}

func (w scaleWorld) divergent(i int) bool {
	return splitmix64(uint64(w.seed)*0xA5A5+uint64(i))%50 == 0
}

// replica returns the replica client i's k-th probe observes. Normal clients
// follow their /24's profile — dominated by a per-/24 candidate, tempered by
// a per-/16 one — so a /24-granular aggregate reproduces them exactly while
// a /16-granular one blends 256 distinct /24 profiles (the accuracy cost the
// sweep measures). Divergent clients follow a personal profile unrelated to
// their prefix.
func (w scaleWorld) replica(i, k int) crp.ReplicaID {
	u := splitmix64(uint64(w.seed)*0x9E37 ^ uint64(i)*uint64(scaleProbesPer+1) + uint64(k))
	if w.divergent(i) {
		personal := int(splitmix64(uint64(w.seed)*0xC3C3+uint64(i)) % scaleCandidates)
		if u%10 < 9 {
			return scaleReplica(personal)
		}
		return scaleReplica(int(u>>8) % scaleCandidates)
	}
	p24 := i % w.num24
	c24 := (p24 * 13) % scaleCandidates
	c16 := ((p24 >> 8) * 7) % scaleCandidates
	switch r := u % 100; {
	case r < 50:
		return scaleReplica(c24)
	case r < 80:
		return scaleReplica(c16)
	default:
		return scaleReplica((c24 + 1) % scaleCandidates)
	}
}

func scaleReplica(j int) crp.ReplicaID {
	return crp.ReplicaID(fmt.Sprintf("R%03d", j))
}

func scaleCandidate(j int) crp.NodeID {
	return crp.NodeID(fmt.Sprintf("cand-%03d", j))
}

// scaleKeyFunc builds the /bits routing table over 10.0.0.0/8 and adapts it
// through the asn package's longest-prefix match — the aggregation plane's
// production keying path.
func scaleKeyFunc(bits int) (func(crp.NodeID) (string, bool), error) {
	routes := make(map[netip.Prefix]netsim.ASN)
	n := 1 << (bits - 8) // /bits prefixes inside 10.0.0.0/8
	for i := 0; i < n; i++ {
		v := uint32(10)<<24 | uint32(i)<<(32-bits)
		a := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		routes[netip.PrefixFrom(a, bits)] = netsim.ASN(i + 1)
	}
	table, err := asn.NewTable(routes)
	if err != nil {
		return nil, err
	}
	return table.KeyFunc(), nil
}

// seedScaleCandidates gives every candidate server a per-client tracker with
// a distinct replica affinity: 16 probes on its own replica, 4 on the next.
func seedScaleCandidates(svc *crp.Service, base time.Time) ([]crp.NodeID, error) {
	cands := make([]crp.NodeID, scaleCandidates)
	for j := 0; j < scaleCandidates; j++ {
		cands[j] = scaleCandidate(j)
		for k := 0; k < 20; k++ {
			r := scaleReplica(j)
			if k >= 16 {
				r = scaleReplica((j + 1) % scaleCandidates)
			}
			if err := svc.Observe(cands[j], base.Add(time.Duration(k)*time.Second), r); err != nil {
				return nil, err
			}
		}
	}
	return cands, nil
}

// warmIntern observes every replica once from a warmup block outside the
// client address space, then invalidates the block's aggregates: the intern
// table ends up populated in a fixed order before the parallel ingest
// starts, removing the one cross-worker ordering the plane would otherwise
// introduce (float folds iterate in interned-ID order).
func warmIntern(svc *crp.Service, keyOf func(crp.NodeID) (string, bool), base time.Time) error {
	warm := crp.NodeID("10.254.0.1")
	for j := 0; j < scaleCandidates; j++ {
		if err := svc.Observe(warm, base, scaleReplica(j)); err != nil {
			return err
		}
	}
	if key, ok := keyOf(warm); ok {
		svc.InvalidateAggregate(key)
	}
	return nil
}

// ingestScaleClients drives every client's probes through the service,
// partitioned across a fixed worker count by aggregation group (per-client
// mode partitions by /24, which is equivalent), so each group's probe order
// — and hence its decay points and demotion decisions — is independent of
// scheduling.
func ingestScaleClients(svc *crp.Service, w scaleWorld, keyOf func(crp.NodeID) (string, bool), base time.Time) error {
	// Assign each /24 to a worker by its aggregation key (all clients of a
	// /24 share one, at any granularity ≤ 24).
	assign := make([]uint8, w.num24)
	for p24 := 0; p24 < w.num24; p24++ {
		probe := crp.NodeID(fmt.Sprintf("10.%d.%d.1", (p24>>8)&255, p24&255))
		key := string(probe)
		if keyOf != nil {
			if k, ok := keyOf(probe); ok {
				key = k
			}
		}
		h := uint32(2166136261)
		for i := 0; i < len(key); i++ {
			h ^= uint32(key[i])
			h *= 16777619
		}
		assign[p24] = uint8(h % scaleIngestWorkers)
	}

	per24 := (w.clients + w.num24 - 1) / w.num24
	var wg sync.WaitGroup
	errs := make([]error, scaleIngestWorkers)
	for wk := 0; wk < scaleIngestWorkers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for p24 := 0; p24 < w.num24; p24++ {
				if int(assign[p24]) != wk {
					continue
				}
				for j := 0; j < per24; j++ {
					i := p24 + j*w.num24
					if i >= w.clients {
						break
					}
					node := crp.NodeID(w.addr(i))
					for k := 0; k < scaleProbesPer; k++ {
						at := base.Add(time.Duration(i*scaleProbesPer+k) * time.Second)
						if err := svc.Observe(node, at, w.replica(i, k)); err != nil {
							errs[wk] = err
							return
						}
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// scoreScaleAccuracy compares the cell service's closest-node answers to a
// per-client baseline on a deterministic client sample. The baseline service
// carries the same candidates and each sampled client's exact probe stream
// in an ordinary tracker; the rank delta is the position of the cell's top-1
// in the baseline's full candidate ranking (0 = agreement).
func scoreScaleAccuracy(svc *crp.Service, w scaleWorld, cands []crp.NodeID, base time.Time, det *scaleDetCell) error {
	baseline := crp.NewService()
	if _, err := seedScaleCandidates(baseline, base); err != nil {
		return err
	}
	step := w.clients / scaleSamples
	if step < 1 {
		step = 1
	}
	sumDelta, matched, n := 0, 0, 0
	for i := 0; i < w.clients; i += step {
		node := crp.NodeID(w.addr(i))
		for k := 0; k < scaleProbesPer; k++ {
			at := base.Add(time.Duration(i*scaleProbesPer+k) * time.Second)
			if err := baseline.Observe(node, at, w.replica(i, k)); err != nil {
				return err
			}
		}
		best, ok, err := svc.ClosestTo(node, cands)
		if err != nil {
			return fmt.Errorf("cell ClosestTo(%s): %w", node, err)
		}
		if !ok {
			return fmt.Errorf("cell ClosestTo(%s): no candidate scored", node)
		}
		ranking, err := baseline.TopK(node, cands, len(cands))
		if err != nil {
			return fmt.Errorf("baseline TopK(%s): %w", node, err)
		}
		delta := len(ranking) // not found would score worst
		for pos, sc := range ranking {
			if sc.Node == best.Node {
				delta = pos
				break
			}
		}
		sumDelta += delta
		if delta == 0 {
			matched++
		}
		if delta > det.RankDeltaMax {
			det.RankDeltaMax = delta
		}
		n++
	}
	det.Samples = n
	det.RankDeltaMean = float64(sumDelta) / float64(n)
	det.AgreementPct = 100 * float64(matched) / float64(n)
	return nil
}

// runScaleQueryPhase measures closest-node latency under a concurrent probe
// stream: catch-up-paced ingestion of fresh probes (as in the churn bench)
// plus one closed-loop ClosestTo worker per core.
func runScaleQueryPhase(svc *crp.Service, w scaleWorld, cands []crp.NodeID, base time.Time, phase time.Duration, cell *scaleCell) error {
	const ingestRate = 2000
	var observes atomic.Int64
	stop := make(chan struct{})
	var ingestErr atomic.Value
	var ingestDone sync.WaitGroup
	ingestDone.Add(1)
	go func() {
		defer ingestDone.Done()
		rng := rand.New(rand.NewSource(w.seed + 777))
		start, sent := time.Now(), 0
		maxBatch := ingestRate / 10
		for {
			select {
			case <-stop:
				return
			default:
			}
			owed := int(time.Since(start).Seconds()*ingestRate) - sent
			if owed > maxBatch {
				owed = maxBatch
			}
			for b := 0; b < owed; b++ {
				i := rng.Intn(w.clients)
				k := scaleProbesPer + rng.Intn(4)
				at := base.Add(time.Duration(i*scaleProbesPer+k) * time.Second)
				if err := svc.Observe(crp.NodeID(w.addr(i)), at, w.replica(i, k)); err != nil {
					ingestErr.Store(err)
					return
				}
			}
			sent += owed
			observes.Add(int64(owed))
			time.Sleep(2 * time.Millisecond)
		}
	}()

	workers := max(runtime.GOMAXPROCS(0), 1)
	lats := make([][]time.Duration, workers)
	qErrs := make([]error, workers)
	deadline := time.Now().Add(phase)
	var wg sync.WaitGroup
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(w.seed + int64(wk)*7919))
			for time.Now().Before(deadline) {
				node := crp.NodeID(w.addr(rng.Intn(w.clients)))
				qs := time.Now()
				if _, _, err := svc.ClosestTo(node, cands); err != nil {
					qErrs[wk] = err
					return
				}
				lats[wk] = append(lats[wk], time.Since(qs))
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	ingestDone.Wait()
	if e := ingestErr.Load(); e != nil {
		return fmt.Errorf("query-phase ingest: %w", e.(error))
	}
	var all []time.Duration
	for wk := range lats {
		if qErrs[wk] != nil {
			return fmt.Errorf("query worker %d: %w", wk, qErrs[wk])
		}
		all = append(all, lats[wk]...)
	}
	p := summarizePhase(all, elapsed)
	cell.QueryPhase.Queries = p.Requests
	cell.QueryPhase.QueriesPerSec = p.PerSecond
	cell.QueryPhase.P50Micros = p.P50Micros
	cell.QueryPhase.P99Micros = p.P99Micros
	cell.QueryPhase.IngestObserves = observes.Load()
	return nil
}

// runScaleCell runs one sweep point end to end. prefixBits == 0 means
// per-client mode (aggregation off).
func runScaleCell(seed int64, clients, prefixBits int, phase time.Duration) (scaleCell, error) {
	cell := scaleCell{}
	cell.Clients = clients
	cell.PrefixBits = prefixBits
	cell.Mode = "per-client"
	if prefixBits > 0 {
		cell.Mode = "aggregate"
	}

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	w := newScaleWorld(seed, clients)
	base := time.Unix(1_800_000_000, 0)
	svc := crp.NewService()
	var keyOf func(crp.NodeID) (string, bool)
	if prefixBits > 0 {
		var err error
		keyOf, err = scaleKeyFunc(prefixBits)
		if err != nil {
			return cell, err
		}
		if err := svc.EnableAggregation(crp.AggregatorConfig{
			KeyOf:         keyOf,
			MinAgreement:  scaleMinAgreement,
			MonitorEvery:  scaleMonitorEvery,
			MonitorProbes: scaleMonitorProbes,
		}); err != nil {
			return cell, err
		}
		if err := warmIntern(svc, keyOf, base); err != nil {
			return cell, err
		}
	}
	cands, err := seedScaleCandidates(svc, base)
	if err != nil {
		return cell, err
	}

	ingestStart := time.Now()
	if err := ingestScaleClients(svc, w, keyOf, base); err != nil {
		return cell, err
	}
	cell.IngestSeconds = time.Since(ingestStart).Seconds()
	cell.IngestPerSec = float64(clients*scaleProbesPer) / cell.IngestSeconds

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		cell.HeapPerClientBytes = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(clients)
	}

	cell.StoreEntries = len(svc.Nodes())
	info := svc.AggregateInfo()
	cell.Groups = info.Groups
	cell.Demoted = info.Demoted
	cell.Monitors = info.Monitors
	cell.Interned = info.Interned
	cell.StateBytes = info.StateBytes
	if prefixBits > 0 {
		tracked := info.Groups + info.Demoted
		if tracked > 0 {
			cell.ReductionX = float64(clients) / float64(tracked)
		}
	} else {
		cell.ReductionX = 1
	}

	// Accuracy before the query phase: the phase's extra probes would
	// otherwise make the det slice timing-dependent.
	if err := scoreScaleAccuracy(svc, w, cands, base, &cell.scaleDetCell); err != nil {
		return cell, err
	}
	if err := runScaleQueryPhase(svc, w, cands, base, phase, &cell); err != nil {
		return cell, err
	}
	return cell, nil
}

// runScale sweeps aggregation off/on across prefix granularities at 50k
// clients, plus the headline 1M-client aggregated cell at full scale, and
// gates the structural claims in-process: aggregation must cut tracked
// entries ≥10×, the per-client sanity cell must agree with the baseline
// exactly, and aggregate state must stay within a per-client byte budget.
func runScale(quick bool, seed int64, out, detOut string) error {
	clients := 50_000
	bigClients := 1_000_000
	grans := []int{16, 20, 24}
	phase := 3 * time.Second
	if quick {
		grans = []int{16, 24}
		bigClients = 0 // CI smoke: ≥50k clients, no 1M cell
		phase = 1500 * time.Millisecond
	}

	fmt.Printf("scale bench: %d clients (big cell %d), granularities %v, %d candidates, %d probes/client\n",
		clients, bigClients, grans, scaleCandidates, scaleProbesPer)

	report := scaleReport{Meta: newBenchMeta("scale", seed, quick, map[string]int64{
		"clients":        int64(clients),
		"big_clients":    int64(bigClients),
		"candidates":     scaleCandidates,
		"probes_per":     scaleProbesPer,
		"ingest_workers": scaleIngestWorkers,
		"phase_ms":       phase.Milliseconds(),
	})}

	type plan struct {
		clients, bits int
	}
	plans := []plan{{clients, 0}}
	for _, g := range grans {
		plans = append(plans, plan{clients, g})
	}
	if bigClients > 0 {
		plans = append(plans, plan{bigClients, 24})
	}

	fmt.Printf("\n%-11s %-6s %9s %9s %9s %8s %8s %10s %9s %9s %9s\n",
		"mode", "bits", "clients", "entries", "groups", "demoted", "red-x", "rank-delta", "agree%", "B/client", "p99us")
	var perClientP99, aggP99 float64
	for _, pl := range plans {
		cell, err := runScaleCell(seed, pl.clients, pl.bits, phase)
		if err != nil {
			return fmt.Errorf("scale cell (clients=%d, bits=%d): %w", pl.clients, pl.bits, err)
		}
		report.Cells = append(report.Cells, cell)
		fmt.Printf("%-11s %-6d %9d %9d %9d %8d %8.1f %10.3f %9.1f %9.0f %9.0f\n",
			cell.Mode, cell.PrefixBits, cell.Clients, cell.StoreEntries, cell.Groups,
			cell.Demoted, cell.ReductionX, cell.RankDeltaMean, cell.AgreementPct,
			cell.HeapPerClientBytes, cell.QueryPhase.P99Micros)

		// In-process gates, mirroring the churn/gossip benches.
		if pl.bits == 0 {
			if cell.RankDeltaMean != 0 || cell.AgreementPct != 100 {
				return fmt.Errorf("scale cell (per-client): baseline disagrees with itself (mean delta %.3f, agree %.1f%%)",
					cell.RankDeltaMean, cell.AgreementPct)
			}
			perClientP99 = cell.QueryPhase.P99Micros
		} else {
			if cell.ReductionX < 10 {
				return fmt.Errorf("scale cell (bits=%d, clients=%d): %.1fx state reduction, want >= 10x",
					pl.bits, pl.clients, cell.ReductionX)
			}
			if perByte := float64(cell.StateBytes) / float64(cell.Clients); perByte > 512 {
				return fmt.Errorf("scale cell (bits=%d, clients=%d): aggregate state %.0f bytes/client, budget 512",
					pl.bits, pl.clients, perByte)
			}
			if cell.Demoted == 0 {
				return fmt.Errorf("scale cell (bits=%d, clients=%d): no divergent client was demoted — the fallback path never ran",
					pl.bits, pl.clients)
			}
			if pl.bits == 24 && pl.clients == clients {
				aggP99 = cell.QueryPhase.P99Micros
			}
		}
	}
	if perClientP99 > 0 && aggP99 > 0 {
		report.P99VsPerClient50k = aggP99 / perClientP99
		fmt.Printf("\nquery p99 at 50k, aggregate/24 vs per-client: %.0fus vs %.0fus (%.2fx)\n",
			aggP99, perClientP99, report.P99VsPerClient50k)
	}

	if detOut != "" {
		det := scaleDetReport{Seed: seed, Quick: quick}
		for _, c := range report.Cells {
			det.Cells = append(det.Cells, c.scaleDetCell)
		}
		if err := writeReport(detOut, det); err != nil {
			return err
		}
	}
	dumpObs("scale bench")
	return writeReport(out, report)
}
