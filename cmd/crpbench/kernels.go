package main

import (
	"fmt"
	"sort"
	"time"

	"repro/crp"
)

// runKernels compares the map-based similarity path against the compiled
// vector kernel that now backs CosineSimilarity, RankBySimilarity,
// ClusterSMF and the Service query surface. The map-based path is
// reconstructed from the exported Dot/Norm primitives — exactly the
// pre-compilation formulation — so the comparison stays honest as the
// internals evolve.
func runKernels(quick bool) error {
	nodes, rankRuns, queries := 1000, 100, 200
	if quick {
		nodes, rankRuns, queries = 200, 25, 50
	}
	fmt.Printf("Kernel comparison — map-based path vs compiled vectors (%d nodes)\n\n", nodes)

	pop := kernelPopulation(nodes)
	candidates := make(map[crp.NodeID]crp.RatioMap, len(pop))
	for _, n := range pop {
		candidates[n.ID] = n.Map
	}

	// Ranking one client against the whole population: per-pair map
	// similarity (sorting inside every Dot/Norm call) vs RankBySimilarity,
	// which compiles each map once and runs the merge-join kernel.
	mapRank := func() time.Duration {
		start := time.Now()
		for run := 0; run < rankRuns; run++ {
			client := pop[run%len(pop)].Map
			scored := make([]crp.Scored, 0, len(candidates))
			for id, m := range candidates {
				sim := 0.0
				if dot := crp.Dot(client, m); dot != 0 {
					if na, nb := client.Norm(), m.Norm(); na != 0 && nb != 0 {
						sim = dot / (na * nb)
					}
				}
				scored = append(scored, crp.Scored{Node: id, Similarity: sim})
			}
			sortScored(scored)
		}
		return time.Since(start) / time.Duration(rankRuns)
	}()
	vecRank := func() time.Duration {
		start := time.Now()
		for run := 0; run < rankRuns; run++ {
			_ = crp.RankBySimilarity(pop[run%len(pop)].Map, candidates)
		}
		return time.Since(start) / time.Duration(rankRuns)
	}()
	fmt.Printf("  %-34s %12v per ranking\n", "rank 1×N, map path (Dot+2×Norm):", mapRank.Round(time.Microsecond))
	fmt.Printf("  %-34s %12v per ranking  (%.1fx)\n\n", "rank 1×N, compiled kernel:", vecRank.Round(time.Microsecond),
		float64(mapRank)/float64(vecRank))

	// Full SMF clustering at population scale.
	clusterRuns := 5
	start := time.Now()
	for i := 0; i < clusterRuns; i++ {
		if _, err := crp.ClusterSMF(pop, crp.ClusterConfig{Threshold: crp.DefaultThreshold}); err != nil {
			return err
		}
	}
	perCluster := time.Since(start) / time.Duration(clusterRuns)
	fmt.Printf("  %-34s %12v per run\n\n", fmt.Sprintf("ClusterSMF over %d nodes:", nodes), perCluster.Round(time.Microsecond))

	// Service Top-K: cold (an observation lands before every query,
	// invalidating the cached maps and compiled snapshot) vs warm (repeated
	// queries between observations, the steady state of a deployed service).
	svc := crp.NewService(crp.WithWindow(10))
	at := time.Unix(0, 0)
	for _, n := range pop {
		for r := range n.Map {
			if err := svc.Observe(n.ID, at, r); err != nil {
				return err
			}
		}
	}
	client := pop[0].ID
	cold := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < queries; i++ {
			if err := svc.Observe(pop[1+i%(len(pop)-1)].ID, at.Add(time.Duration(i)*time.Second), "r-extra"); err != nil {
				return 0, err
			}
			if _, err := svc.TopK(client, nil, 5); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(queries), nil
	}
	warm := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := svc.TopK(client, nil, 5); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(queries), nil
	}
	perCold, err := cold()
	if err != nil {
		return err
	}
	perWarm, err := warm()
	if err != nil {
		return err
	}
	fmt.Printf("  %-34s %12v per query\n", "Service.TopK, observe each query:", perCold.Round(time.Microsecond))
	fmt.Printf("  %-34s %12v per query  (%.1fx)\n", "Service.TopK, cached snapshot:", perWarm.Round(time.Microsecond),
		float64(perCold)/float64(perWarm))
	return nil
}

// sortScored orders a ranking the way RankBySimilarity does: similarity
// descending, node ID ascending for ties.
func sortScored(s []crp.Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Similarity != s[j].Similarity {
			return s[i].Similarity > s[j].Similarity
		}
		return s[i].Node < s[j].Node
	})
}

// kernelPopulation builds a metro-grouped node population, the same shape
// the repository's benchmarks use.
func kernelPopulation(n int) []crp.Node {
	const groups, replicasPerGroup = 40, 4
	nodes := make([]crp.Node, 0, n)
	for i := 0; i < n; i++ {
		g := i % groups
		m := crp.RatioMap{}
		for r := 0; r < replicasPerGroup; r++ {
			m[crp.ReplicaID(fmt.Sprintf("g%03d-r%d", g, r))] = float64(1 + (i+r)%5)
		}
		if i%7 == 0 {
			m[crp.ReplicaID(fmt.Sprintf("g%03d-r0", (g+1)%groups))] = 0.5
		}
		nodes = append(nodes, crp.Node{
			ID:  crp.NodeID(fmt.Sprintf("n%04d", i)),
			Map: m.Normalize(),
		})
	}
	return nodes
}
