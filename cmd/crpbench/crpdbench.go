// The crpd experiment is not from the paper: it stress-benchmarks the
// positioning daemon (internal/crpdaemon) over real loopback UDP and answers
// the question the serial daemon couldn't: do the sub-millisecond cheap ops
// stay fast while SMF clustering requests hammer the heavy pool?
//
// Phase A measures cheap-op (similarity/closest) round-trip latency with
// only cheap clients running. Phase B repeats the identical cheap load while
// dedicated clients issue back-to-back distinct_clusters requests. The
// report — written as JSON when -out is set — carries both phases'
// throughput and latency percentiles, the p99 contention ratio, and the
// daemon's full metrics snapshot fetched through the "stats" op.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/crpdaemon"
	"repro/internal/obs"
)

// crpdPhase summarizes one load phase of the daemon bench. The client-side
// figures are UDP round trips; the handler figures are the daemon's own
// cheap-op execution latencies for the same window, extracted by diffing
// stats snapshots taken at the segment boundaries. On an oversubscribed host
// (GOMAXPROCS=1) the round trip includes time-slicing against the clustering
// compute itself, so the handler view is the one that isolates what the
// daemon's split worker pools control: cheap ops never queue behind SMF.
type crpdPhase struct {
	Requests         int     `json:"requests"`
	Seconds          float64 `json:"seconds"`
	PerSecond        float64 `json:"requests_per_sec"`
	MeanMicros       float64 `json:"mean_us"`
	P50Micros        float64 `json:"p50_us"`
	P90Micros        float64 `json:"p90_us"`
	P99Micros        float64 `json:"p99_us"`
	HandlerP50Micros float64 `json:"handler_p50_us"`
	HandlerP99Micros float64 `json:"handler_p99_us"`
}

// crpdReport is the BENCH_crpd.json payload.
type crpdReport struct {
	Meta              benchMeta     `json:"meta"`
	Nodes             int           `json:"nodes"`
	CheapClients      int           `json:"cheap_clients"`
	RequestsPerClient int           `json:"requests_per_client"`
	HeavyClients      int           `json:"heavy_clients"`
	Baseline          crpdPhase     `json:"baseline"`
	Contended         crpdPhase     `json:"contended"`
	HeavyRequests     int           `json:"heavy_requests"`
	HeavyMeanMillis   float64       `json:"heavy_mean_ms"`
	P99Ratio          float64       `json:"p99_ratio"`
	HandlerP99Ratio   float64       `json:"handler_p99_ratio"`
	CodecComparison   []codecResult `json:"codec_comparison"`
	Stats             obs.Snapshot  `json:"stats"`
}

// codecResult is one codec's measurements in the JSON-vs-binary comparison:
// single-query round trips, batched round trips (one datagram carrying
// BatchSize queries), representative wire sizes, and the allocation cost of
// decoding one request and one reply. The alloc comparison is the hard gate
// (binary must allocate strictly less than JSON per message); throughput
// and latency are reported for the record but not gated, since loopback
// round-trip figures on a shared host are too noisy to fail a build on.
type codecResult struct {
	Codec              string  `json:"codec"`
	Requests           int     `json:"requests"`
	PerSecond          float64 `json:"requests_per_sec"`
	P50Micros          float64 `json:"p50_us"`
	P99Micros          float64 `json:"p99_us"`
	Batches            int     `json:"batches"`
	BatchSize          int     `json:"batch_size"`
	BatchQueriesPerSec float64 `json:"batch_queries_per_sec"`
	BatchP99Micros     float64 `json:"batch_p99_us"`
	RequestBytes       int     `json:"request_bytes"`
	ReplyBytes         int     `json:"reply_bytes"`
	ReqDecodeAllocs    float64 `json:"request_decode_allocs"`
	ReplyDecodeAllocs  float64 `json:"reply_decode_allocs"`
}

// runCrpdBench seeds a service, starts the daemon on loopback UDP and runs
// the two-phase cheap-vs-contended latency comparison.
func runCrpdBench(quick bool, seed int64, out string) error {
	metros, perMetro := 30, 25
	cheapClients, perClient, heavyClients := 8, 800, 2
	if quick {
		metros, perMetro = 12, 10
		cheapClients, perClient = 8, 400
	}

	svc := crp.NewService(crp.WithWindow(10))
	nodes, err := seedCrpdService(svc, metros, perMetro, seed)
	if err != nil {
		return fmt.Errorf("seeding service: %w", err)
	}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	d, err := crpdaemon.Serve(pc, svc, crpdaemon.Config{})
	if err != nil {
		pc.Close()
		return fmt.Errorf("starting daemon: %w", err)
	}
	defer d.Close()

	fmt.Printf("crpd bench: %d nodes, %d cheap clients x %d requests, %d heavy clients\n",
		len(nodes), cheapClients, perClient, heavyClients)

	// Warmup: touch every code path once (this primes the service's
	// compiled-vector caches, the SMF snapshot and the kernel's socket
	// buffers) so the measured segments don't pay one-time costs in their
	// tails.
	if _, _, err := runCheapPhase(d.Addr(), nodes, cheapClients, 50, seed+999); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}
	if _, err := fetchStats(d.Addr()); err != nil {
		return fmt.Errorf("warmup stats: %w", err)
	}

	// The two conditions — cheap ops alone vs cheap ops plus clustering
	// load — are measured in interleaved segments rather than two long
	// phases, so host-wide drift (GC, scheduler, noisy neighbors) lands on
	// both latency pools symmetrically instead of biasing one.
	const trials = 10
	perSegment := max(perClient/trials, 1)
	var baseLats, contLats []time.Duration
	var baseElapsed, contElapsed time.Duration
	var baseHandler, contHandler obs.HistogramSnapshot
	var heavyReqs int64
	var heavyNanos int64
	for trial := 0; trial < trials; trial++ {
		before, err := fetchStats(d.Addr())
		if err != nil {
			return fmt.Errorf("stats op: %w", err)
		}
		lats, elapsed, err := runCheapPhase(d.Addr(), nodes, cheapClients, perSegment, seed+int64(trial)*2)
		if err != nil {
			return fmt.Errorf("baseline segment %d: %w", trial, err)
		}
		baseLats = append(baseLats, lats...)
		baseElapsed += elapsed
		mid, err := fetchStats(d.Addr())
		if err != nil {
			return fmt.Errorf("stats op: %w", err)
		}
		accumulateCheapHandlers(&baseHandler, before, mid)

		reqs, nanos, stopHeavy, err := startHeavyLoad(d.Addr(), heavyClients)
		if err != nil {
			return fmt.Errorf("heavy load: %w", err)
		}
		lats, elapsed, err = runCheapPhase(d.Addr(), nodes, cheapClients, perSegment, seed+int64(trial)*2+1)
		herr := stopHeavy()
		if err != nil {
			return fmt.Errorf("contended segment %d: %w", trial, err)
		}
		if herr != nil {
			return fmt.Errorf("heavy load: %w", herr)
		}
		contLats = append(contLats, lats...)
		contElapsed += elapsed
		after, err := fetchStats(d.Addr())
		if err != nil {
			return fmt.Errorf("stats op: %w", err)
		}
		accumulateCheapHandlers(&contHandler, mid, after)
		heavyReqs += reqs.Load()
		heavyNanos += nanos.Load()
	}
	codecResults, err := runCodecComparison(d.Addr(), nodes, quick, seed)
	if err != nil {
		return fmt.Errorf("codec comparison: %w", err)
	}

	baseline := summarizePhase(baseLats, baseElapsed)
	contended := summarizePhase(contLats, contElapsed)
	baseline.HandlerP50Micros = baseHandler.Quantile(0.50) * 1e6
	baseline.HandlerP99Micros = baseHandler.Quantile(0.99) * 1e6
	contended.HandlerP50Micros = contHandler.Quantile(0.50) * 1e6
	contended.HandlerP99Micros = contHandler.Quantile(0.99) * 1e6

	report := crpdReport{
		Meta: newBenchMeta("crpd", seed, quick, map[string]int64{
			"nodes":               int64(len(nodes)),
			"cheap_clients":       int64(cheapClients),
			"requests_per_client": int64(perClient),
			"heavy_clients":       int64(heavyClients),
		}),
		Nodes:             len(nodes),
		CheapClients:      cheapClients,
		RequestsPerClient: perClient,
		HeavyClients:      heavyClients,
		Baseline:          baseline,
		Contended:         contended,
		HeavyRequests:     int(heavyReqs),
		CodecComparison:   codecResults,
	}
	if heavyReqs > 0 {
		report.HeavyMeanMillis = float64(heavyNanos) / float64(heavyReqs) / 1e6
	}
	if baseline.P99Micros > 0 {
		report.P99Ratio = contended.P99Micros / baseline.P99Micros
	}
	if baseline.HandlerP99Micros > 0 {
		report.HandlerP99Ratio = contended.HandlerP99Micros / baseline.HandlerP99Micros
	}

	// Fetch the daemon's own view through the stats op, so the report proves
	// the instrumentation end to end (non-zero per-op counters/histograms).
	stats, err := fetchStats(d.Addr())
	if err != nil {
		return fmt.Errorf("stats op: %w", err)
	}
	report.Stats = *stats

	fmt.Printf("\nbaseline  cheap ops: %6d reqs  %8.0f req/s  p50 %7.0fus  p90 %7.0fus  p99 %7.0fus\n",
		baseline.Requests, baseline.PerSecond, baseline.P50Micros, baseline.P90Micros, baseline.P99Micros)
	fmt.Printf("contended cheap ops: %6d reqs  %8.0f req/s  p50 %7.0fus  p90 %7.0fus  p99 %7.0fus\n",
		contended.Requests, contended.PerSecond, contended.P50Micros, contended.P90Micros, contended.P99Micros)
	fmt.Printf("heavy load: %d distinct_clusters requests, mean %.2fms\n",
		report.HeavyRequests, report.HeavyMeanMillis)
	fmt.Printf("cheap-op handler p99: %.0fus baseline, %.0fus contended -> ratio %.2fx (acceptance target: <= 2x)\n",
		baseline.HandlerP99Micros, contended.HandlerP99Micros, report.HandlerP99Ratio)
	fmt.Printf("cheap-op round-trip p99 ratio: %.2fx (includes host-level time slicing at GOMAXPROCS=%d)\n\n",
		report.P99Ratio, runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %10s %9s %9s %12s %11s %9s %9s %11s %11s\n",
		"codec", "req/s", "p50_us", "p99_us", "batch-q/s", "batch-p99", "req-B", "reply-B", "dec-allocs", "rdec-allocs")
	for _, cr := range codecResults {
		fmt.Printf("%-8s %10.0f %9.0f %9.0f %12.0f %11.0f %9d %9d %11.1f %11.1f\n",
			cr.Codec, cr.PerSecond, cr.P50Micros, cr.P99Micros, cr.BatchQueriesPerSec,
			cr.BatchP99Micros, cr.RequestBytes, cr.ReplyBytes, cr.ReqDecodeAllocs, cr.ReplyDecodeAllocs)
	}
	fmt.Println()
	fmt.Print(renderObsSnapshot("crpd bench", report.Stats))
	return writeReport(out, report)
}

// startHeavyLoad launches clients that issue distinct_clusters requests in a
// paced closed loop (each sleeps 4x the previous request's duration, a ~20%
// duty cycle per client: clustering is an occasional control-plane query in
// the paper's use cases, not a saturating stream, and an unpaced loop on a
// single-core host measures the OS scheduler rather than the daemon). The
// returned stop function halts the load and reports any client error.
func startHeavyLoad(addr net.Addr, clients int) (reqs, nanos *atomic.Int64, stop func() error, err error) {
	reqs, nanos = new(atomic.Int64), new(atomic.Int64)
	halt := make(chan struct{})
	var done sync.WaitGroup
	var clientErr atomic.Value
	for i := 0; i < clients; i++ {
		conn, err := net.Dial("udp", addr.String())
		if err != nil {
			close(halt)
			done.Wait()
			return nil, nil, nil, err
		}
		done.Add(1)
		go func() {
			defer done.Done()
			defer conn.Close()
			req, _ := json.Marshal(crpdaemon.Request{Op: "distinct_clusters", N: 8})
			buf := make([]byte, 64*1024)
			for {
				select {
				case <-halt:
					return
				default:
				}
				start := time.Now()
				if _, err := exchange(conn, req, buf); err != nil {
					clientErr.Store(fmt.Errorf("distinct_clusters: %w", err))
					return
				}
				elapsed := time.Since(start)
				reqs.Add(1)
				nanos.Add(int64(elapsed))
				select {
				case <-halt:
					return
				case <-time.After(4 * elapsed):
				}
			}
		}()
	}
	stop = func() error {
		close(halt)
		done.Wait()
		if e := clientErr.Load(); e != nil {
			return e.(error)
		}
		return nil
	}
	return reqs, nanos, stop, nil
}

// seedCrpdService populates svc with metros*perMetro nodes. Nodes in the
// same metro see the same dominant replicas with small per-node noise, so
// the similarity structure (and therefore SMF clustering cost) resembles the
// paper's wide-area topology.
func seedCrpdService(svc *crp.Service, metros, perMetro int, seed int64) ([]string, error) {
	rng := rand.New(rand.NewSource(seed))
	base := time.Unix(1_700_000_000, 0)
	nodes := make([]string, 0, metros*perMetro)
	for m := 0; m < metros; m++ {
		local := []string{
			fmt.Sprintf("m%02d-r0", m),
			fmt.Sprintf("m%02d-r1", m),
			fmt.Sprintf("m%02d-r2", m),
		}
		for n := 0; n < perMetro; n++ {
			id := fmt.Sprintf("m%02d-n%03d", m, n)
			nodes = append(nodes, id)
			for probe := 0; probe < 10; probe++ {
				var replica string
				switch r := rng.Float64(); {
				case r < 0.65:
					replica = local[0]
				case r < 0.85:
					replica = local[1]
				case r < 0.95:
					replica = local[2]
				default:
					// Cross-metro noise: occasionally redirected far away.
					replica = fmt.Sprintf("m%02d-r0", rng.Intn(metros))
				}
				at := base.Add(time.Duration(probe) * time.Minute)
				if err := svc.Observe(crp.NodeID(id), at, crp.ReplicaID(replica)); err != nil {
					return nil, err
				}
			}
		}
	}
	return nodes, nil
}

// runCheapPhase fires clients concurrent lockstep request/reply loops of
// cheap ops (alternating similarity and closest) and returns every observed
// round-trip latency plus the phase's wall-clock duration.
func runCheapPhase(addr net.Addr, nodes []string, clients, perClient int, seed int64) ([]time.Duration, time.Duration, error) {
	var wg sync.WaitGroup
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats[c], errs[c] = cheapClientLoop(addr, nodes, perClient, seed+int64(c)*7919)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	all := make([]time.Duration, 0, clients*perClient)
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			return nil, 0, fmt.Errorf("client %d: %w", c, errs[c])
		}
		all = append(all, lats[c]...)
	}
	return all, elapsed, nil
}

func cheapClientLoop(addr net.Addr, nodes []string, requests int, seed int64) ([]time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	buf := make([]byte, 64*1024)
	lats := make([]time.Duration, 0, requests)
	for i := 0; i < requests; i++ {
		var req crpdaemon.Request
		if i%2 == 0 {
			req = crpdaemon.Request{
				Op: "similarity",
				A:  nodes[rng.Intn(len(nodes))],
				B:  nodes[rng.Intn(len(nodes))],
			}
		} else {
			req = crpdaemon.Request{
				Op:     "closest",
				Client: nodes[rng.Intn(len(nodes))],
				K:      3,
			}
		}
		wire, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		resp, err := exchange(conn, wire, buf)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", req.Op, err)
		}
		lats = append(lats, time.Since(start))
		if !resp.OK {
			return nil, fmt.Errorf("%s: daemon error: %s", req.Op, resp.Error)
		}
	}
	return lats, nil
}

// exchange performs one lockstep request/reply round trip and decodes the
// reply envelope.
func exchange(conn net.Conn, req []byte, buf []byte) (crpdaemon.Response, error) {
	if _, err := conn.Write(req); err != nil {
		return crpdaemon.Response{}, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return crpdaemon.Response{}, err
	}
	n, err := conn.Read(buf)
	if err != nil {
		return crpdaemon.Response{}, err
	}
	var resp crpdaemon.Response
	if err := json.Unmarshal(buf[:n], &resp); err != nil {
		return crpdaemon.Response{}, fmt.Errorf("bad reply: %w", err)
	}
	return resp, nil
}

// fetchStats pulls the daemon's metrics snapshot through the stats op.
func fetchStats(addr net.Addr) (*obs.Snapshot, error) {
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req, _ := json.Marshal(crpdaemon.Request{Op: "stats"})
	resp, err := exchange(conn, req, make([]byte, 64*1024))
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Stats == nil {
		return nil, fmt.Errorf("stats op failed: %s", resp.Error)
	}
	return resp.Stats, nil
}

// accumulateCheapHandlers adds the cheap-op (similarity/closest) handler
// latency observed between two stats snapshots into agg, by diffing the
// daemon's per-op histograms bucket by bucket.
func accumulateCheapHandlers(agg *obs.HistogramSnapshot, before, after *obs.Snapshot) {
	for _, op := range []string{"similarity", "closest"} {
		name := "crpd.latency." + op
		b, a := before.Histograms[name], after.Histograms[name]
		if len(a.Bounds) == 0 {
			continue
		}
		if len(agg.Bounds) == 0 {
			agg.Bounds = a.Bounds
			agg.Counts = make([]uint64, len(a.Counts))
		}
		for i := range a.Counts {
			var prev uint64
			if i < len(b.Counts) {
				prev = a.Counts[i] - b.Counts[i]
			} else {
				prev = a.Counts[i]
			}
			agg.Counts[i] += prev
			agg.Count += prev
		}
		agg.Sum += a.Sum - b.Sum
	}
}

// summarizePhase reduces per-request latencies to the phase summary.
func summarizePhase(lats []time.Duration, elapsed time.Duration) crpdPhase {
	p := crpdPhase{Requests: len(lats), Seconds: elapsed.Seconds()}
	if len(lats) == 0 {
		return p
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	p.PerSecond = float64(len(lats)) / elapsed.Seconds()
	p.MeanMicros = float64(sum) / float64(len(lats)) / 1e3
	p.P50Micros = float64(percentileDur(sorted, 0.50)) / 1e3
	p.P90Micros = float64(percentileDur(sorted, 0.90)) / 1e3
	p.P99Micros = float64(percentileDur(sorted, 0.99)) / 1e3
	return p
}

// percentileDur returns the q-quantile of an ascending latency slice by
// nearest-rank interpolation.
func percentileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// renderObsSnapshot formats the non-zero instruments of a snapshot for the
// terminal: counters and gauges verbatim, histograms reduced to count, mean
// and tail quantiles.
func renderObsSnapshot(label string, snap obs.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "obs snapshot [%s]\n", label)
	names := make([]string, 0, len(snap.Counters))
	for n, v := range snap.Counters {
		if v > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-36s %d\n", n, snap.Counters[n])
	}
	names = names[:0]
	for n, v := range snap.Gauges {
		if v != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-36s %d (gauge)\n", n, snap.Gauges[n])
	}
	names = names[:0]
	for n, h := range snap.Histograms {
		if h.Count > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		fmt.Fprintf(&b, "  %-36s count=%d mean=%s p50=%s p99=%s\n", n, h.Count,
			fmtSeconds(h.Mean()), fmtSeconds(h.Quantile(0.50)), fmtSeconds(h.Quantile(0.99)))
	}
	return b.String()
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// dumpObs prints the process-wide registry after an experiment, so every
// crpbench run leaves a metrics trail alongside its tables.
func dumpObs(label string) {
	fmt.Print(renderObsSnapshot(label, obs.Default().Snapshot()))
	fmt.Println()
}

// codecBatchSize is how many cheap queries one batched datagram carries in
// the codec comparison.
const codecBatchSize = 8

// runCodecComparison measures the JSON and binary codecs head to head
// against the live daemon: single-query round trips, batched round trips,
// representative wire sizes, and per-message decode allocations. Segments
// alternate between codecs so host-wide drift lands on both symmetrically.
// It fails if binary decoding does not allocate strictly less than JSON —
// that is the codec's reason to exist — and reports everything else.
func runCodecComparison(addr net.Addr, nodes []string, quick bool, seed int64) ([]codecResult, error) {
	clients, perSegment, segments := 4, 100, 5
	batchesPerSegment := 25
	if quick {
		perSegment, segments = 60, 3
		batchesPerSegment = 15
	}

	type accum struct {
		lats, batchLats []time.Duration
		elapsed         time.Duration
		batchElapsed    time.Duration
	}
	acc := map[bool]*accum{false: {}, true: {}}
	for seg := 0; seg < segments; seg++ {
		for _, bin := range []bool{false, true} {
			a := acc[bin]
			lats, elapsed, err := runCodecPhase(addr, nodes, clients, perSegment, seed+int64(seg)*17, bin, 0)
			if err != nil {
				return nil, err
			}
			a.lats = append(a.lats, lats...)
			a.elapsed += elapsed
			lats, elapsed, err = runCodecPhase(addr, nodes, clients, batchesPerSegment, seed+int64(seg)*17+3, bin, codecBatchSize)
			if err != nil {
				return nil, err
			}
			a.batchLats = append(a.batchLats, lats...)
			a.batchElapsed += elapsed
		}
	}

	var out []codecResult
	for _, bin := range []bool{false, true} {
		a := acc[bin]
		phase := summarizePhase(a.lats, a.elapsed)
		batch := summarizePhase(a.batchLats, a.batchElapsed)
		name := "json"
		if bin {
			name = "binary"
		}
		reqBytes, replyBytes, reqAllocs, replyAllocs, err := measureCodecCosts(nodes, bin)
		if err != nil {
			return nil, err
		}
		out = append(out, codecResult{
			Codec:              name,
			Requests:           phase.Requests,
			PerSecond:          phase.PerSecond,
			P50Micros:          phase.P50Micros,
			P99Micros:          phase.P99Micros,
			Batches:            batch.Requests,
			BatchSize:          codecBatchSize,
			BatchQueriesPerSec: batch.PerSecond * codecBatchSize,
			BatchP99Micros:     batch.P99Micros,
			RequestBytes:       reqBytes,
			ReplyBytes:         replyBytes,
			ReqDecodeAllocs:    reqAllocs,
			ReplyDecodeAllocs:  replyAllocs,
		})
	}

	jsonRes, binRes := out[0], out[1]
	if binRes.ReqDecodeAllocs >= jsonRes.ReqDecodeAllocs {
		return nil, fmt.Errorf("binary request decode allocates %.1f/msg, JSON %.1f/msg — binary must allocate strictly less",
			binRes.ReqDecodeAllocs, jsonRes.ReqDecodeAllocs)
	}
	if binRes.ReplyDecodeAllocs >= jsonRes.ReplyDecodeAllocs {
		return nil, fmt.Errorf("binary reply decode allocates %.1f/msg, JSON %.1f/msg — binary must allocate strictly less",
			binRes.ReplyDecodeAllocs, jsonRes.ReplyDecodeAllocs)
	}
	if binRes.RequestBytes >= jsonRes.RequestBytes {
		return nil, fmt.Errorf("binary request is %dB, JSON %dB — binary must be smaller",
			binRes.RequestBytes, jsonRes.RequestBytes)
	}
	return out, nil
}

// runCodecPhase mirrors runCheapPhase for one codec: batchSize 0 sends
// single queries, otherwise each request is a batch of batchSize queries.
func runCodecPhase(addr net.Addr, nodes []string, clients, perClient int, seed int64, bin bool, batchSize int) ([]time.Duration, time.Duration, error) {
	var wg sync.WaitGroup
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats[c], errs[c] = codecClientLoop(addr, nodes, perClient, seed+int64(c)*104729, bin, batchSize)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	all := make([]time.Duration, 0, clients*perClient)
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			return nil, 0, fmt.Errorf("codec client %d: %w", c, errs[c])
		}
		all = append(all, lats[c]...)
	}
	return all, elapsed, nil
}

// codecQuery builds one cheap query, alternating similarity and closest.
func codecQuery(rng *rand.Rand, nodes []string, i int) crpdaemon.Request {
	if i%2 == 0 {
		return crpdaemon.Request{
			Op: "similarity",
			A:  nodes[rng.Intn(len(nodes))],
			B:  nodes[rng.Intn(len(nodes))],
		}
	}
	return crpdaemon.Request{
		Op:     "closest",
		Client: nodes[rng.Intn(len(nodes))],
		K:      3,
	}
}

func codecClientLoop(addr net.Addr, nodes []string, requests int, seed int64, bin bool, batchSize int) ([]time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	buf := make([]byte, 64*1024)
	lats := make([]time.Duration, 0, requests)
	for i := 0; i < requests; i++ {
		var req crpdaemon.Request
		if batchSize > 0 {
			req = crpdaemon.Request{Op: "batch", Batch: make([]crpdaemon.Request, batchSize)}
			for j := range req.Batch {
				req.Batch[j] = codecQuery(rng, nodes, j)
			}
		} else {
			req = codecQuery(rng, nodes, i)
		}
		wire, err := crpdaemon.EncodeRequest(&req, bin)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := conn.Write(wire); err != nil {
			return nil, err
		}
		if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return nil, err
		}
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(start))
		resp, gotBin, err := crpdaemon.DecodeResponse(buf[:n])
		if err != nil {
			return nil, fmt.Errorf("bad reply: %w", err)
		}
		if gotBin != bin {
			return nil, fmt.Errorf("sent bin=%v but reply came back bin=%v", bin, gotBin)
		}
		if batchSize > 0 {
			if !resp.OK || len(resp.Batch) != batchSize {
				return nil, fmt.Errorf("batch reply = ok=%v subs=%d: %s", resp.OK, len(resp.Batch), resp.Error)
			}
			for j, sub := range resp.Batch {
				if !sub.OK {
					return nil, fmt.Errorf("batch[%d]: daemon error: %s", j, sub.Error)
				}
			}
		} else if !resp.OK {
			return nil, fmt.Errorf("daemon error: %s", resp.Error)
		}
	}
	return lats, nil
}

// measureCodecCosts reports the representative wire sizes and the decode
// allocation cost per message for one codec, using the same similarity
// query and a synthesized closest reply. Both decoders are warmed first so
// encoding/json's one-time type caches don't bias the JSON figure.
func measureCodecCosts(nodes []string, bin bool) (reqBytes, replyBytes int, reqAllocs, replyAllocs float64, err error) {
	req := crpdaemon.Request{Op: "similarity", A: nodes[0], B: nodes[1%len(nodes)]}
	reqWire, err := crpdaemon.EncodeRequest(&req, bin)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	sim := 0.5
	resp := crpdaemon.Response{OK: true, Ranked: []crpdaemon.RankedNode{
		{Node: nodes[0], Similarity: 0.9},
		{Node: nodes[1%len(nodes)], Similarity: 0.7},
		{Node: nodes[2%len(nodes)], Similarity: 0.5},
	}, Similarity: &sim}
	replyWire := crpdaemon.EncodeResponseWire(&resp, bin)

	if _, _, err := crpdaemon.DecodeRequest(reqWire); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("decode warmup: %w", err)
	}
	if _, _, err := crpdaemon.DecodeResponse(replyWire); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("reply decode warmup: %w", err)
	}
	reqAllocs = testing.AllocsPerRun(512, func() {
		if _, _, err := crpdaemon.DecodeRequest(reqWire); err != nil {
			panic(err)
		}
	})
	replyAllocs = testing.AllocsPerRun(512, func() {
		if _, _, err := crpdaemon.DecodeResponse(replyWire); err != nil {
			panic(err)
		}
	})
	return len(reqWire), len(replyWire), reqAllocs, replyAllocs, nil
}
