package main

import (
	"fmt"
	"strings"
)

// benchArgs is the parsed flag set handed to every experiment runner.
type benchArgs struct {
	quick  bool
	seed   int64
	nodes  int
	out    string
	detOut string
	plan   string
}

// experimentSpec registers one experiment: name, a one-line description for
// -exp list, which optional flags it accepts, and its runner. Experiments
// used to be an ad-hoc if-chain in main, which meant every new experiment
// re-invented flag validation; the registry makes "add an experiment" a
// single table entry, and mismatched flags fail up front with the
// experiment's own contract instead of being silently ignored.
type experimentSpec struct {
	name string
	desc string
	// paper experiments share one simulated-scenario build in main and run
	// through the figure dispatcher; run is nil for them.
	paper bool
	// flags lists the optional flag names this experiment honors beyond
	// -exp and -out. Setting any other flag is an error.
	flags []string
	// require lists flags that must be set.
	require []string
	run     func(a benchArgs) error
}

func (s *experimentSpec) allows(flag string) bool {
	if flag == "exp" || flag == "out" {
		return true
	}
	for _, f := range s.flags {
		if f == flag {
			return true
		}
	}
	return false
}

// validateFlags checks the explicitly-set flag names against the spec.
func (s *experimentSpec) validateFlags(set map[string]bool) error {
	for f := range set {
		if !s.allows(f) {
			return fmt.Errorf("experiment %q does not take -%s (accepts: %s)",
				s.name, f, strings.Join(append([]string{"out"}, s.flags...), ", "))
		}
	}
	for _, f := range s.require {
		if !set[f] {
			return fmt.Errorf("experiment %q requires -%s", s.name, f)
		}
	}
	return nil
}

// paperSpec registers a figure/table experiment driven by the shared
// scenario build.
func paperSpec(name, desc string) experimentSpec {
	return experimentSpec{name: name, desc: desc, paper: true, flags: []string{"quick", "seed"}}
}

// experiments is the registry, in display order for -exp list.
var experiments = []experimentSpec{
	paperSpec("all", "every paper experiment below, off one scenario build"),
	paperSpec("fig4", "closest-node rank CDF vs the latency ground truth"),
	paperSpec("fig5", "closest-node rank vs candidate-set size"),
	paperSpec("table1", "SMF clustering quality vs the metro ground truth"),
	paperSpec("fig6", "cluster count vs similarity threshold"),
	paperSpec("fig7", "cluster quality vs similarity threshold"),
	paperSpec("fig8", "average rank vs probe interval"),
	paperSpec("fig9", "average rank vs probe window size"),
	paperSpec("repair", "path-repair candidate ranking study"),
	paperSpec("sec6", "name selection, overhead and bootstrap studies"),
	paperSpec("ablations", "similarity/center/coverage/baseline/stability ablations"),
	{
		name: "kernels", desc: "map-based vs compiled-vector similarity kernel timings",
		flags: []string{"quick"},
		run:   func(a benchArgs) error { return runKernels(a.quick) },
	},
	{
		name: "crpd", desc: "daemon stress bench: cheap-op latency under SMF clustering load",
		flags: []string{"quick", "seed"},
		run:   func(a benchArgs) error { return runCrpdBench(a.quick, a.seed, a.out) },
	},
	{
		name: "churn", desc: "sharded store vs snapshot baseline under continuous ingest",
		flags: []string{"quick", "seed", "nodes"},
		run:   func(a benchArgs) error { return runChurn(a.quick, a.seed, a.nodes, a.out) },
	},
	{
		name: "faults", desc: "accuracy degradation across probe-loss x CDN-staleness",
		flags: []string{"quick", "seed"},
		run:   func(a benchArgs) error { return runFaultSweep(a.quick, a.seed, a.out) },
	},
	{
		name: "gossip", desc: "mesh convergence across rumor fanout x gossip packet loss",
		flags: []string{"quick", "seed"},
		run:   func(a benchArgs) error { return runGossipBench(a.quick, a.seed, a.out) },
	},
	{
		name: "scale", desc: "million-client ingest with prefix aggregation on/off",
		flags: []string{"quick", "seed", "det-out"},
		run:   func(a benchArgs) error { return runScale(a.quick, a.seed, a.out, a.detOut) },
	},
	{
		name: "fusion", desc: "multi-CDN fused kernel vs single-CDN baselines",
		flags: []string{"quick", "seed"},
		run:   func(a benchArgs) error { return runFusion(a.quick, a.seed, a.out) },
	},
	{
		name: "drift", desc: "CDN-change detector precision/recall vs the fault plane's truth schedule",
		flags: []string{"quick", "seed", "det-out"},
		run:   func(a benchArgs) error { return runDriftBench(a.quick, a.seed, a.out, a.detOut) },
	},
	{
		name: "scenario", desc: "declarative scenario runner: drive a daemon mesh from a JSON plan",
		flags: []string{"plan", "det-out"}, require: []string{"plan"},
		run: func(a benchArgs) error { return runScenario(a.plan, a.out, a.detOut) },
	},
}

func findExperiment(name string) *experimentSpec {
	for i := range experiments {
		if experiments[i].name == name {
			return &experiments[i]
		}
	}
	return nil
}

func experimentNames() []string {
	names := make([]string, len(experiments))
	for i := range experiments {
		names[i] = experiments[i].name
	}
	return names
}

// renderExperimentList is the -exp list output.
func renderExperimentList() string {
	var b strings.Builder
	b.WriteString("registered experiments:\n")
	for i := range experiments {
		s := &experiments[i]
		extra := ""
		if len(s.flags) > 0 || len(s.require) > 0 {
			required := make(map[string]bool, len(s.require))
			for _, f := range s.require {
				required[f] = true
			}
			var fl []string
			for _, f := range s.flags {
				if required[f] {
					fl = append(fl, "-"+f+" (required)")
				} else {
					fl = append(fl, "-"+f)
				}
			}
			extra = "  [" + strings.Join(fl, " ") + "]"
		}
		fmt.Fprintf(&b, "  %-10s %s%s\n", s.name, s.desc, extra)
	}
	return b.String()
}
