package main

import (
	"fmt"
	"time"

	"repro/internal/experiment"
)

// fusionReport is the BENCH_fusion.json shape. Every field is deterministic
// in the seed — no timings — so same-seed reruns byte-compare, which CI
// exploits as a determinism gate.
type fusionReport struct {
	Meta benchMeta `json:"meta"`
	// IdentityOK records the back-compat pin: a 1-namespace service answers
	// bit-identically with fusion on or off (maps, rankings, snapshot bytes,
	// shard digests). The run fails before writing the report if it doesn't.
	IdentityOK bool                    `json:"identity_ok"`
	Cells      []experiment.FusionCell `json:"cells"`
	Params     experiment.FusionParams `json:"params"`
}

// runFusion evaluates fused multi-CDN positioning against the single-CDN
// paths (-exp fusion). The run self-gates: in every sparse-coverage cell the
// fused kernel must beat the best single CDN on mean closest-node rank, and
// the single-namespace configuration must stay bit-identical to the
// pre-fusion path.
func runFusion(quick bool, seed int64, out string) error {
	params := experiment.DefaultFusionParams()
	params.Seed = seed
	idClients, idCands, idReplicas, idProbes := 60, 60, 300, 12
	if quick {
		params.NumClients = 40
		params.NumCandidates = 60
		params.NumReplicas = 240
		params.RichProbes = 18
		params.SparseProbes = 6
		idClients, idCands, idReplicas, idProbes = 25, 30, 150, 6
	}

	fmt.Printf("fusion: %d clients, %d candidates, %d replicas, seed %d\n",
		params.NumClients, params.NumCandidates, params.NumReplicas, params.Seed)
	start := time.Now()

	fmt.Println("checking 1-namespace fusion identity...")
	if err := experiment.FusionIdentityCheck(seed, idClients, idCands, idReplicas, idProbes); err != nil {
		return fmt.Errorf("fusion: back-compat identity gate failed: %w", err)
	}
	fmt.Println("identity gate passed: fusion-enabled 1-namespace service is bit-identical")

	outcome, err := experiment.RunFusion(params)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(experiment.RenderFusion(outcome))
	fmt.Println()

	// Accuracy gate: where per-CDN signal is thinnest (the sparse-coverage
	// cells), fusing both CDNs must outrank the best single CDN.
	for _, c := range outcome.Cells {
		if c.Coverage != "sparse" {
			continue
		}
		if c.MeanRankFused >= c.MeanRankBestSingle {
			return fmt.Errorf("fusion: gate failed in %s/%s cell: fused mean rank %.3f is not better than best single (%s) %.3f",
				c.Density, c.Coverage, c.MeanRankFused, c.BestSingleNS, c.MeanRankBestSingle)
		}
		fmt.Printf("gate: %s/%s fused %.2f beats best single %s %.2f\n",
			c.Density, c.Coverage, c.MeanRankFused, c.BestSingleNS, c.MeanRankBestSingle)
	}

	report := fusionReport{
		Meta: newBenchMeta("fusion", seed, quick, map[string]int64{
			"clients":       int64(params.NumClients),
			"candidates":    int64(params.NumCandidates),
			"replicas":      int64(params.NumReplicas),
			"rich_probes":   int64(params.RichProbes),
			"sparse_probes": int64(params.SparseProbes),
		}),
		IdentityOK: true,
		Cells:      outcome.Cells,
		Params:     outcome.Params,
	}
	if err := writeReport(out, report); err != nil {
		return err
	}
	dumpObs("fusion experiment")
	fmt.Printf("total runtime %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
