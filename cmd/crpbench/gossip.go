// The gossip experiment is not from the paper: it sweeps the peering
// plane's convergence behaviour across rumor fanout and gossip-link packet
// loss. Every cell is a full multi-daemon convergence run
// (experiment.RunGossip): a mesh of daemons fed disjoint probe streams over
// a deterministic in-memory packet substrate, pumped until their stores
// reach identical shard digests, then checked byte-for-byte against a
// single daemon fed the merged stream, and finally made to propagate a
// Forget. The report lands in BENCH_gossip.json via make bench; reruns with
// the same seed are byte-identical, which CI gates on.
package main

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/obs"
)

// gossipCell is one sweep point: a wire codec crossed with a rumor fanout
// and a gossip-link loss rate. Codec "json" pins every engine to the JSON
// fallback, "binary" negotiates the compact codec everywhere, and "mixed"
// keeps engine 0 JSON-pinned — the rolling-upgrade topology.
type gossipCell struct {
	Codec    string                    `json:"codec"`
	Fanout   int                       `json:"fanout"`
	LossRate float64                   `json:"loss_rate"`
	Outcome  *experiment.GossipOutcome `json:"outcome"`
}

// gossipReport is the BENCH_gossip.json payload.
type gossipReport struct {
	Meta  benchMeta    `json:"meta"`
	Cells []gossipCell `json:"cells"`
}

// runGossipBench sweeps fanout x loss and reports convergence rounds,
// replication fidelity and per-daemon gossip traffic at each point.
func runGossipBench(quick bool, seed int64, out string) error {
	codecs := []string{"json", "binary", "mixed"}
	fanouts := []int{1, 2, 3}
	losses := []float64{0, 0.1, 0.3}
	daemons, nodesPer := 3, 40
	if quick {
		codecs = []string{"json", "binary"}
		fanouts = []int{1, 2}
		losses = []float64{0, 0.3}
		nodesPer = 20
	}

	fmt.Printf("gossip sweep: %d daemons, %d nodes/daemon; %d codecs x %d fanouts x %d loss rates\n",
		daemons, nodesPer, len(codecs), len(fanouts), len(losses))

	report := gossipReport{Meta: newBenchMeta("gossip", seed, quick, map[string]int64{
		"daemons":          int64(daemons),
		"nodes_per_daemon": int64(nodesPer),
		"codecs":           int64(len(codecs)),
		"fanouts":          int64(len(fanouts)),
		"loss_rates":       int64(len(losses)),
	})}

	fmt.Printf("\n%-8s %-8s %-8s %10s %10s %12s %12s %12s %12s\n",
		"codec", "fanout", "loss", "rounds", "forget", "snap-match", "deltas", "pulls", "bin-msgs")
	for _, codec := range codecs {
		for _, fanout := range fanouts {
			for li, loss := range losses {
				cfg := experiment.GossipConfig{
					Daemons:        daemons,
					NodesPerDaemon: nodesPer,
					Fanout:         fanout,
					Seed:           uint64(seed),
					Codec:          codec,
					Registry:       obs.Default(),
				}
				if loss > 0 {
					cfg.Faults = faults.Scenario{
						// Distinct per-cell seeds so loss decisions differ
						// across cells while staying replayable.
						Seed:   uint64(seed)*1000 + uint64(fanout)*10 + uint64(li),
						Faults: []faults.Fault{{Kind: faults.PacketLoss, Rate: loss, Target: "gossip"}},
					}
				}
				outc, err := experiment.RunGossip(cfg)
				if err != nil {
					return fmt.Errorf("gossip sweep (codec=%s, fanout=%d, loss=%.2f): %w", codec, fanout, loss, err)
				}
				if err := outc.Check(experiment.GossipEnvelope{MaxRounds: 50}); err != nil {
					return fmt.Errorf("gossip sweep (codec=%s, fanout=%d, loss=%.2f): %w", codec, fanout, loss, err)
				}
				report.Cells = append(report.Cells, gossipCell{Codec: codec, Fanout: fanout, LossRate: loss, Outcome: outc})

				deltas, pulls, binMsgs := uint64(0), uint64(0), uint64(0)
				for _, st := range outc.Stats {
					deltas += st.DeltasSent
					pulls += st.Pulls
					binMsgs += st.BinMsgs
				}
				if codec == "json" && binMsgs != 0 {
					return fmt.Errorf("gossip sweep (codec=json): %d binary datagrams on a JSON-pinned mesh", binMsgs)
				}
				if codec == "binary" && loss == 0 && binMsgs == 0 {
					return fmt.Errorf("gossip sweep (codec=binary, fanout=%d): mesh never exchanged a binary datagram", fanout)
				}
				fmt.Printf("%-8s %-8d %-8.2f %10d %10d %12v %12d %12d %12d\n",
					codec, fanout, loss, outc.RoundsToConverge, outc.ForgetRounds, outc.SnapshotMatch, deltas, pulls, binMsgs)
			}
		}
	}
	dumpObs("gossip sweep")
	return writeReport(out, report)
}
