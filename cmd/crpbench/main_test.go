package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-quick", "-exp", "fig99"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRunQuickSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// One cheap experiment from each family exercises the full dispatch.
	for _, exp := range []string{"table1", "repair"} {
		if err := run([]string{"-quick", "-exp", exp}); err != nil {
			t.Errorf("run -quick -exp %s: %v", exp, err)
		}
	}
}
