// Command dnsprobe is a dig-like client against the simulated CDN: it boots
// the topology, serves the CDN zone on a local UDP socket through the
// dnswire codec, and issues queries from the vantage point of a chosen
// client host, printing the answers and the evolving redirection ratio map.
//
// Usage:
//
//	dnsprobe [-seed N] [-client N] [-probes N] [-name FQDN]
//
// This exercises the exact DNS wire path a real CRP deployment would use:
// build query → UDP → authoritative server → mapping system → UDP → parse.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dnsprobe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dnsprobe", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	clientIdx := fs.Int("client", 0, "index of the client host to probe from")
	probes := fs.Int("probes", 10, "number of probes to issue")
	name := fs.String("name", "", "name to query (default: first CDN name)")
	interval := fs.Duration("interval", 10*time.Minute, "virtual time between probes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := netsim.DefaultParams()
	params.Seed = *seed
	params.NumClients = 200
	params.NumCandidates = 50
	params.NumReplicas = 200
	topo, err := netsim.Generate(params)
	if err != nil {
		return err
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		return err
	}
	clock := netsim.NewClock()
	backend := &dnsserver.CDNBackend{Topo: topo, CDN: network, Clock: clock}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	registry := dnsserver.NewRegistry()
	srv, err := dnsserver.Serve(pc, backend, registry)
	if err != nil {
		return err
	}
	defer srv.Close()

	clients := topo.Clients()
	if *clientIdx < 0 || *clientIdx >= len(clients) {
		return fmt.Errorf("client index %d out of range [0,%d)", *clientIdx, len(clients))
	}
	ldns := clients[*clientIdx]
	host := topo.Host(ldns)
	fmt.Printf("; probing as %s (%s, %s, AS%d) via %s\n\n",
		host.Name, host.Addr, host.Region, host.ASN, srv.Addr())

	client, err := dnsserver.NewClient(srv.Addr(), registry, ldns)
	if err != nil {
		return err
	}
	defer client.Close()

	qname := *name
	if qname == "" {
		qname = network.Names()[0]
	}

	tracker := crp.NewTracker()
	epoch := time.Now()
	for i := 0; i < *probes; i++ {
		resp, err := client.Query(qname, dnswire.TypeA)
		if err != nil {
			return fmt.Errorf("probe %d: %w", i+1, err)
		}
		fmt.Printf(";; probe %d at t=%v — %s, %d answers\n",
			i+1, clock.Now(), resp.RCode, len(resp.Answers))
		var ids []crp.ReplicaID
		for _, rec := range resp.Answers {
			fmt.Printf("%s\n", rec)
			if a, ok := rec.Data.(*dnswire.ARecord); ok {
				if id, ok := topo.HostByAddr(a.Addr); ok {
					ids = append(ids, crp.ReplicaID(topo.Host(id).Name))
				}
			}
		}
		tracker.Observe(epoch.Add(clock.Now()), ids...)
		clock.Advance(*interval)
	}

	fmt.Printf("\n;; ratio map after %d probes:\n;; %s\n", tracker.Len(), tracker.RatioMap())
	return nil
}
