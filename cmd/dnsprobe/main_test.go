package main

import "testing"

func TestRunProbes(t *testing.T) {
	if err := run([]string{"-probes", "3", "-client", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-client", "99999"}); err == nil {
		t.Error("out-of-range client index should fail")
	}
	if err := run([]string{"-probes", "1", "-name", "nonexistent.sim."}); err == nil {
		// dnsprobe queries an unknown name: the server answers NXDOMAIN,
		// which is still a successful probe exchange.
		t.Log("unknown name answered (NXDOMAIN) — acceptable")
	}
}
