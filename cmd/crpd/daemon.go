package main

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/crp"
)

// request is the union of all operation payloads.
type request struct {
	Op         string   `json:"op"`
	Node       string   `json:"node,omitempty"`
	Replicas   []string `json:"replicas,omitempty"`
	A          string   `json:"a,omitempty"`
	B          string   `json:"b,omitempty"`
	Client     string   `json:"client,omitempty"`
	Candidates []string `json:"candidates,omitempty"`
	K          int      `json:"k,omitempty"`
	N          int      `json:"n,omitempty"`
	Threshold  float64  `json:"threshold,omitempty"`
}

// response is the generic reply envelope.
type response struct {
	OK         bool               `json:"ok"`
	Error      string             `json:"error,omitempty"`
	Similarity *float64           `json:"similarity,omitempty"`
	RatioMap   map[string]float64 `json:"ratioMap,omitempty"`
	Nodes      []string           `json:"nodes,omitempty"`
	Ranked     []rankedNode       `json:"ranked,omitempty"`
}

type rankedNode struct {
	Node       string  `json:"node"`
	Similarity float64 `json:"similarity"`
}

// daemon wires the UDP front end to a crp.Service.
type daemon struct {
	svc *crp.Service
	now func() time.Time
}

func newDaemon(svc *crp.Service) *daemon {
	return &daemon{svc: svc, now: time.Now}
}

// serve answers datagrams until the socket is closed.
func (d *daemon) serve(pc net.PacketConn) error {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		reply := d.handle(buf[:n])
		if _, err := pc.WriteTo(reply, from); err != nil {
			return err
		}
	}
}

// handle processes one JSON request and returns the JSON reply.
func (d *daemon) handle(raw []byte) []byte {
	var req request
	if err := json.Unmarshal(raw, &req); err != nil {
		return marshal(response{Error: fmt.Sprintf("bad request: %v", err)})
	}
	resp := d.dispatch(req)
	return marshal(resp)
}

func (d *daemon) dispatch(req request) response {
	fail := func(err error) response { return response{Error: err.Error()} }
	cfg := crp.ClusterConfig{Threshold: req.Threshold, SecondPass: true}
	if cfg.Threshold == 0 {
		cfg.Threshold = crp.DefaultThreshold
	}

	switch req.Op {
	case "observe":
		replicas := make([]crp.ReplicaID, len(req.Replicas))
		for i, r := range req.Replicas {
			replicas[i] = crp.ReplicaID(r)
		}
		if err := d.svc.Observe(crp.NodeID(req.Node), d.now(), replicas...); err != nil {
			return fail(err)
		}
		return response{OK: true}

	case "ratio_map":
		m, err := d.svc.RatioMap(crp.NodeID(req.Node))
		if err != nil {
			return fail(err)
		}
		out := make(map[string]float64, len(m))
		for r, f := range m {
			out[string(r)] = f
		}
		return response{OK: true, RatioMap: out}

	case "similarity":
		sim, err := d.svc.Similarity(crp.NodeID(req.A), crp.NodeID(req.B))
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Similarity: &sim}

	case "closest":
		k := req.K
		if k <= 0 {
			k = 1
		}
		cands := make([]crp.NodeID, len(req.Candidates))
		for i, c := range req.Candidates {
			cands[i] = crp.NodeID(c)
		}
		ranked, err := d.svc.TopK(crp.NodeID(req.Client), cands, k)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Ranked: toRanked(ranked)}

	case "same_cluster":
		peers, err := d.svc.SameCluster(crp.NodeID(req.Node), cfg)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Nodes: toStrings(peers)}

	case "distinct_clusters":
		n := req.N
		if n <= 0 {
			n = 1
		}
		nodes, err := d.svc.DistinctClusters(n, cfg)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Nodes: toStrings(nodes)}

	case "nodes":
		return response{OK: true, Nodes: toStrings(d.svc.Nodes())}

	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func toStrings(ids []crp.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func toRanked(scored []crp.Scored) []rankedNode {
	out := make([]rankedNode, len(scored))
	for i, s := range scored {
		out[i] = rankedNode{Node: string(s.Node), Similarity: s.Similarity}
	}
	return out
}

func marshal(resp response) []byte {
	b, err := json.Marshal(resp)
	if err != nil {
		// The response type contains nothing unmarshalable; this is
		// unreachable, but fail closed with a static error.
		return []byte(`{"ok":false,"error":"internal marshal failure"}`)
	}
	return b
}
