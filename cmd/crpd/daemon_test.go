package main

import (
	"encoding/json"
	"net"
	"os"
	"testing"
	"time"

	"repro/crp"
)

func testDaemon() *daemon {
	d := newDaemon(crp.NewService(crp.WithWindow(10)))
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	d.now = func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Minute)
	}
	return d
}

func do(t *testing.T, d *daemon, req string) response {
	t.Helper()
	var resp response
	if err := json.Unmarshal(d.handle([]byte(req)), &resp); err != nil {
		t.Fatalf("bad JSON reply: %v", err)
	}
	return resp
}

func seed(t *testing.T, d *daemon) {
	t.Helper()
	for i := 0; i < 5; i++ {
		for node, reps := range map[string]string{
			"west-1": `["rw1","rw2"]`,
			"west-2": `["rw1","rw2"]`,
			"east-1": `["re1","re2"]`,
			"east-2": `["re1"]`,
		} {
			resp := do(t, d, `{"op":"observe","node":"`+node+`","replicas":`+reps+`}`)
			if !resp.OK {
				t.Fatalf("observe failed: %+v", resp)
			}
		}
	}
}

func TestDaemonObserveAndRatioMap(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	resp := do(t, d, `{"op":"ratio_map","node":"west-1"}`)
	if !resp.OK || len(resp.RatioMap) != 2 {
		t.Fatalf("ratio_map = %+v", resp)
	}
	sum := 0.0
	for _, f := range resp.RatioMap {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("ratios sum to %v", sum)
	}
}

func TestDaemonSimilarity(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	same := do(t, d, `{"op":"similarity","a":"west-1","b":"west-2"}`)
	cross := do(t, d, `{"op":"similarity","a":"west-1","b":"east-1"}`)
	if !same.OK || !cross.OK || same.Similarity == nil || cross.Similarity == nil {
		t.Fatalf("similarity replies: %+v / %+v", same, cross)
	}
	if *same.Similarity <= *cross.Similarity {
		t.Errorf("same-coast similarity %v not above cross-coast %v",
			*same.Similarity, *cross.Similarity)
	}
	if resp := do(t, d, `{"op":"similarity","a":"west-1","b":"ghost"}`); resp.OK {
		t.Error("similarity with unknown node should fail")
	}
}

func TestDaemonClosest(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	resp := do(t, d, `{"op":"closest","client":"west-1","candidates":["west-2","east-1"],"k":2}`)
	if !resp.OK || len(resp.Ranked) != 2 {
		t.Fatalf("closest = %+v", resp)
	}
	if resp.Ranked[0].Node != "west-2" {
		t.Errorf("closest to west-1 = %q, want west-2", resp.Ranked[0].Node)
	}
}

func TestDaemonClusterQueries(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	same := do(t, d, `{"op":"same_cluster","node":"west-1"}`)
	if !same.OK {
		t.Fatalf("same_cluster = %+v", same)
	}
	found := false
	for _, n := range same.Nodes {
		if n == "west-2" {
			found = true
		}
		if n == "east-1" || n == "east-2" {
			t.Errorf("east node %q in west-1's cluster", n)
		}
	}
	if !found {
		t.Error("west-2 missing from west-1's cluster")
	}

	distinct := do(t, d, `{"op":"distinct_clusters","n":2}`)
	if !distinct.OK || len(distinct.Nodes) != 2 {
		t.Fatalf("distinct_clusters = %+v", distinct)
	}
	if distinct.Nodes[0][0] == distinct.Nodes[1][0] {
		t.Errorf("distinct cluster picks %v from the same coast", distinct.Nodes)
	}
}

func TestDaemonNodesAndErrors(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	nodes := do(t, d, `{"op":"nodes"}`)
	if !nodes.OK || len(nodes.Nodes) != 4 {
		t.Fatalf("nodes = %+v", nodes)
	}
	if resp := do(t, d, `{"op":"warp"}`); resp.OK {
		t.Error("unknown op should fail")
	}
	if resp := do(t, d, `not json`); resp.OK {
		t.Error("bad JSON should fail")
	}
	if resp := do(t, d, `{"op":"observe","node":""}`); resp.OK {
		t.Error("observe with empty node should fail")
	}
}

func TestDaemonOverUDP(t *testing.T) {
	d := testDaemon()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.serve(pc)
	}()
	defer func() {
		pc.Close()
		<-done
	}()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte(`{"op":"observe","node":"n1","replicas":["r1"]}`)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.Unmarshal(buf[:n], &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("observe over UDP = %+v", resp)
	}
}

func TestStateSaveAndLoad(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	path := t.TempDir() + "/state.json"
	if err := saveState(d.svc, path); err != nil {
		t.Fatalf("saveState: %v", err)
	}

	restored := crp.NewService(crp.WithWindow(10))
	if err := loadState(restored, path); err != nil {
		t.Fatalf("loadState: %v", err)
	}
	if got, want := len(restored.Nodes()), len(d.svc.Nodes()); got != want {
		t.Errorf("restored %d nodes, want %d", got, want)
	}
	sim, err := restored.Similarity("west-1", "west-2")
	if err != nil {
		t.Fatal(err)
	}
	if sim <= 0 {
		t.Errorf("restored similarity = %v, want > 0", sim)
	}
}

func TestLoadStateMissingFileIsFirstRun(t *testing.T) {
	svc := crp.NewService()
	if err := loadState(svc, t.TempDir()+"/nonexistent.json"); err != nil {
		t.Errorf("missing state file should be tolerated: %v", err)
	}
}

func TestLoadStateCorruptFileFails(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadState(crp.NewService(), path); err == nil {
		t.Error("corrupt state file accepted")
	}
}
