package main

import (
	"os"
	"testing"
	"time"

	"repro/crp"
)

func seedService(t *testing.T) *crp.Service {
	t.Helper()
	svc := crp.NewService(crp.WithWindow(10))
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		for node, reps := range map[string][]crp.ReplicaID{
			"west-1": {"rw1", "rw2"},
			"west-2": {"rw1", "rw2"},
			"east-1": {"re1", "re2"},
		} {
			if err := svc.Observe(crp.NodeID(node), at, reps...); err != nil {
				t.Fatalf("observe: %v", err)
			}
		}
	}
	return svc
}

func TestStateSaveAndLoad(t *testing.T) {
	svc := seedService(t)
	path := t.TempDir() + "/state.json"
	if err := saveState(svc, path); err != nil {
		t.Fatalf("saveState: %v", err)
	}

	restored := crp.NewService(crp.WithWindow(10))
	if err := loadState(restored, path); err != nil {
		t.Fatalf("loadState: %v", err)
	}
	if got, want := len(restored.Nodes()), len(svc.Nodes()); got != want {
		t.Errorf("restored %d nodes, want %d", got, want)
	}
	sim, err := restored.Similarity("west-1", "west-2")
	if err != nil {
		t.Fatal(err)
	}
	if sim <= 0 {
		t.Errorf("restored similarity = %v, want > 0", sim)
	}
}

func TestLoadStateMissingFileIsFirstRun(t *testing.T) {
	svc := crp.NewService()
	if err := loadState(svc, t.TempDir()+"/nonexistent.json"); err != nil {
		t.Errorf("missing state file should be tolerated: %v", err)
	}
}

func TestLoadStateCorruptFileFails(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadState(crp.NewService(), path); err == nil {
		t.Error("corrupt state file accepted")
	}
}

func TestPeersFlagRequiresGossipListen(t *testing.T) {
	err := run([]string{"-peers", "127.0.0.1:9999"})
	if err == nil || err.Error() != "-peers requires -gossip-listen" {
		t.Fatalf("err = %v, want the -peers/-gossip-listen coupling error", err)
	}
}

func TestAggregateFlagValidation(t *testing.T) {
	for _, bad := range []string{"-1", "33", "64"} {
		if err := run([]string{"-aggregate", bad}); err == nil {
			t.Errorf("-aggregate %s accepted", bad)
		}
	}
}
