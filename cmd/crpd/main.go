// Command crpd runs the stand-alone CRP positioning service as a network
// daemon: applications report the CDN redirections they observe (e.g., from
// passively watching their own DNS traffic) and query relative positions,
// closest nodes and clusters. The protocol is one JSON object per UDP
// datagram — deliberately minimal, mirroring the paper's argument that a
// CRP service is easy to integrate through well-known interfaces.
//
// Usage:
//
//	crpd [-listen 127.0.0.1:5353] [-window 10] [-state FILE]
//	     [-cheap-workers N] [-heavy-workers N] [-queue N] [-timeout 5s]
//	     [-gossip-listen ADDR] [-peers ADDR,ADDR] [-gossip-interval 1s]
//	     [-daemon-id ID] [-aggregate BITS] [-fusion] [-fusion-weights NS=W,..]
//	     [-drift] [-drift-interval 30s] [-drift-config FILE]
//
// Request shapes:
//
//	{"op":"observe","node":"n1","replicas":["r1","r2"]}
//	{"op":"ratio_map","node":"n1"}
//	{"op":"similarity","a":"n1","b":"n2"}
//	{"op":"closest","client":"n1","candidates":["n2","n3"],"k":2}
//	{"op":"same_cluster","node":"n1","threshold":0.1}
//	{"op":"distinct_clusters","n":3,"threshold":0.1}
//	{"op":"nodes"}
//	{"op":"stats"}
//	{"op":"peer-join","addr":"host:port"}
//	{"op":"peer-status"}
//	{"op":"drift-status"}
//
// Every response carries {"ok":true,...} or {"ok":false,"error":"..."};
// replies to requests that overran the daemon's deadline additionally set
// "timedOut":true. The "stats" op returns the daemon's metrics snapshot —
// per-op counts, errors and latency histograms — as JSON.
//
// Requests are served by two bounded worker pools (cheap ops and SMF
// clustering ops), so clustering load never head-of-line-blocks the cheap
// queries; see internal/crpdaemon.
//
// With -gossip-listen set, the daemon also joins a replication mesh: every
// locally observed or forgotten node gossips to its peers and anti-entropy
// keeps the stores converged (see internal/peering and DESIGN.md §8). Peers
// are seeded with -peers or at runtime through the peer-join op.
//
// With -aggregate BITS set, IPv4-addressed client nodes are aggregated by
// their /BITS prefix instead of getting one tracker each (the million-client
// mode; see DESIGN.md §10): probes collapse into per-prefix ratio maps,
// queries fall back per-client only for divergent clients, and the "stats"
// op reports group count, fallback ratio and a state-size proxy under
// crp.aggregate.*. Aggregated clients live outside the sharded store, so
// they are neither gossiped to peers nor written to -state snapshots.
//
// With -fusion set, the daemon runs the fused multi-CDN similarity kernel:
// replica IDs of the form "ns!replica" carry their CDN namespace, and every
// similarity/closest/clustering answer mixes per-CDN cosines under coverage
// weighting (optionally scaled per namespace with -fusion-weights
// "cdnA=1,cdnB=0.5"). Queries can also scope to one CDN with "ns":
//
//	{"op":"closest","client":"n1","k":2,"ns":"cdnA"}
//
// A daemon whose replicas carry no namespaces answers identically with
// -fusion on or off, so the flag is safe to enable ahead of multi-CDN
// traffic.
//
// With -drift set, the daemon runs the CDN-change detector (see
// internal/drift and DESIGN.md §13): every -drift-interval it snapshots
// the compiled ratio-map stream per CDN namespace (and per prefix group
// when -aggregate is on) and flags mapping remaps and frozen-map staleness
// while rejecting client-side LDNS churn. Alarm counts export under
// drift.* in "stats"; the "drift-status" op returns the full detector
// report. -drift-config points at a JSON file of detector knobs
// (sensitivity, thresholds, windows) for tuning without a rebuild.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/crp"
	"repro/internal/crpdaemon"
	"repro/internal/drift"
	"repro/internal/peering"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crpd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	flags := flag.NewFlagSet("crpd", flag.ContinueOnError)
	listen := flags.String("listen", "127.0.0.1:5353", "UDP address to listen on")
	window := flags.Int("window", 10, "probe window per node (0 = unbounded)")
	statePath := flags.String("state", "", "snapshot file: loaded at startup, written on shutdown")
	cheapWorkers := flags.Int("cheap-workers", 0, "workers for cheap ops (0 = max(4, NumCPU))")
	heavyWorkers := flags.Int("heavy-workers", 0, "workers for clustering ops (0 = max(1, NumCPU/2))")
	queueDepth := flags.Int("queue", 0, "per-pool queue depth (0 = 256)")
	timeout := flags.Duration("timeout", 5*time.Second, "per-request deadline")
	gossipListen := flags.String("gossip-listen", "", "UDP address for the gossip mesh (empty = peering disabled)")
	peers := flags.String("peers", "", "comma-separated gossip addresses to join at startup")
	gossipInterval := flags.Duration("gossip-interval", time.Second, "gossip round cadence")
	gossipCodec := flags.String("gossip-codec", "", `gossip wire codec: "" or "binary" negotiates the compact binary codec, "json" pins the JSON fallback (for meshes with non-upgraded daemons)`)
	daemonID := flags.String("daemon-id", "", "this daemon's mesh identity (default: the gossip listen address)")
	aggregate := flags.Int("aggregate", 0, "aggregate IPv4 clients by /BITS prefix instead of per-client trackers (0 = off)")
	fusion := flags.Bool("fusion", false, "enable the fused multi-CDN similarity kernel (namespaced replica IDs: \"ns!replica\")")
	fusionWeights := flags.String("fusion-weights", "", `per-namespace fusion weights, e.g. "cdnA=1,cdnB=0.5" (requires -fusion)`)
	driftOn := flags.Bool("drift", false, "run the CDN-change drift detector over the ratio-map snapshot stream")
	driftInterval := flags.Duration("drift-interval", drift.DefaultInterval, "snapshot cadence of the drift detector (requires -drift)")
	driftConfig := flags.String("drift-config", "", "JSON file of drift detector knobs (requires -drift)")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if *peers != "" && *gossipListen == "" {
		return errors.New("-peers requires -gossip-listen")
	}
	if !*driftOn && *driftConfig != "" {
		return errors.New("-drift-config requires -drift")
	}
	if *aggregate < 0 || *aggregate > 32 {
		return fmt.Errorf("-aggregate %d: prefix length must be in 1..32", *aggregate)
	}

	var opts []crp.TrackerOption
	if *window > 0 {
		opts = append(opts, crp.WithWindow(*window))
	}
	if *fusionWeights != "" && !*fusion {
		return errors.New("-fusion-weights requires -fusion")
	}

	svc := crp.NewService(opts...)
	if *fusion {
		weights, err := parseFusionWeights(*fusionWeights)
		if err != nil {
			return err
		}
		if err := svc.EnableFusion(crp.FusionConfig{Weights: weights}); err != nil {
			return err
		}
		fmt.Println("crpd fusing multi-CDN signals")
	}
	if *aggregate > 0 {
		if err := svc.EnableAggregation(crp.AggregatorConfig{KeyOf: crp.PrefixKeyFunc(*aggregate)}); err != nil {
			return err
		}
		fmt.Printf("crpd aggregating clients by /%d prefix\n", *aggregate)
	}

	// Warm start: CRP's bootstrap time is ~100 minutes of history, so a
	// restarting daemon reloads its redirection state.
	if *statePath != "" {
		if err := loadState(svc, *statePath); err != nil {
			return err
		}
	}

	// The gossip engine must be wired before the service takes traffic so
	// every local mutation is stamped and queued for rumor propagation.
	var peer *peering.Peering
	var gossipPC net.PacketConn
	if *gossipListen != "" {
		var err error
		gossipPC, err = net.ListenPacket("udp", *gossipListen)
		if err != nil {
			return fmt.Errorf("gossip listen: %w", err)
		}
		id := *daemonID
		if id == "" {
			id = gossipPC.LocalAddr().String()
		}
		peer, err = peering.New(peering.Config{
			Self:     id,
			Addr:     gossipPC.LocalAddr().String(),
			Service:  svc,
			Interval: *gossipInterval,
			Codec:    *gossipCodec,
		})
		if err != nil {
			gossipPC.Close()
			return err
		}
		peer.Attach(gossipPC)
		if err := peer.Start(); err != nil {
			gossipPC.Close()
			return err
		}
		fmt.Printf("crpd gossiping on %s as %q\n", gossipPC.LocalAddr(), id)
		for _, addr := range strings.Split(*peers, ",") {
			if addr = strings.TrimSpace(addr); addr == "" {
				continue
			}
			if err := peer.Join(addr); err != nil {
				fmt.Fprintf(os.Stderr, "crpd: join %s: %v\n", addr, err)
			}
		}
	}

	// The drift monitor taps the service's compiled snapshots on its own
	// cadence; it starts before the daemon takes traffic so the baseline
	// covers the whole run.
	var mon *drift.Monitor
	if *driftOn {
		cfg := drift.DefaultConfig()
		if *driftConfig != "" {
			blob, err := os.ReadFile(*driftConfig)
			if err != nil {
				return fmt.Errorf("drift config: %w", err)
			}
			if cfg, err = drift.DecodeConfig(blob); err != nil {
				return fmt.Errorf("drift config %q: %w", *driftConfig, err)
			}
		}
		var err error
		mon, err = drift.NewMonitor(svc, cfg, drift.WithInterval(*driftInterval))
		if err != nil {
			return err
		}
		mon.Start()
		fmt.Printf("crpd watching for CDN drift every %s\n", *driftInterval)
	}

	pc, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return err
	}
	d, err := crpdaemon.Serve(pc, svc, crpdaemon.Config{
		CheapWorkers: *cheapWorkers,
		HeavyWorkers: *heavyWorkers,
		QueueDepth:   *queueDepth,
		Timeout:      *timeout,
		Peering:      peer,
		Drift:        mon,
	})
	if err != nil {
		pc.Close()
		return err
	}
	fmt.Printf("crpd listening on %s (window %d)\n", d.Addr(), *window)

	// On SIGINT/SIGTERM: snapshot, then stop serving. Close drains
	// in-flight handlers before returning.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	if mon != nil {
		mon.Close()
	}
	if peer != nil {
		peer.Close()
		gossipPC.Close()
	}
	if *statePath != "" {
		if err := saveState(svc, *statePath); err != nil {
			fmt.Fprintln(os.Stderr, "crpd: save state:", err)
		}
	}
	return d.Close()
}

// parseFusionWeights parses the "ns=weight,ns=weight" flag form.
func parseFusionWeights(s string) (map[crp.Namespace]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[crp.Namespace]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ns, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-fusion-weights: %q is not ns=weight", part)
		}
		var v float64
		if _, err := fmt.Sscanf(w, "%g", &v); err != nil {
			return nil, fmt.Errorf("-fusion-weights: bad weight %q: %v", w, err)
		}
		if err := crp.Namespace(ns).Valid(); err != nil {
			return nil, fmt.Errorf("-fusion-weights: %v", err)
		}
		out[crp.Namespace(ns)] = v
	}
	return out, nil
}

func loadState(svc *crp.Service, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // first run
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := svc.LoadSnapshot(f); err != nil {
		return fmt.Errorf("load state %q: %w", path, err)
	}
	fmt.Printf("crpd restored %d nodes from %s\n", len(svc.Nodes()), path)
	return nil
}

func saveState(svc *crp.Service, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := svc.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
