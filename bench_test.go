// Package repro's benchmark harness regenerates every table and figure of
// the CRP paper's evaluation as a testing.B benchmark, reporting the
// headline numbers via b.ReportMetric so `go test -bench` output doubles as
// a results table (EXPERIMENTS.md records a full-scale run made with
// cmd/crpbench). Reduced-scale scenarios keep the default bench run fast;
// the shapes match the full-scale runs.
package repro

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/detour"
	"repro/internal/dnswire"
	"repro/internal/experiment"
	"repro/internal/king"
	"repro/internal/netsim"
)

var (
	benchOnce sync.Once
	benchSc   *experiment.Scenario
	benchErr  error
)

// benchScenario is the shared reduced-scale world (same candidate density
// as the paper).
func benchScenario(b *testing.B) *experiment.Scenario {
	b.Helper()
	benchOnce.Do(func() {
		benchSc, benchErr = experiment.NewScenario(experiment.ScenarioParams{
			Seed:             1,
			NumClients:       150,
			NumCandidates:    240,
			NumReplicas:      500,
			MeridianFailures: true,
		})
	})
	if benchErr != nil {
		b.Fatalf("NewScenario: %v", benchErr)
	}
	return benchSc
}

func benchProbeCfg() experiment.ClosestNodeConfig {
	return experiment.ClosestNodeConfig{
		Schedule: experiment.ProbeSchedule{Interval: 10 * time.Minute, Probes: 36},
	}
}

func benchSweepCfg() experiment.RankSweepConfig {
	return experiment.RankSweepConfig{
		Duration:          2 * 24 * time.Hour,
		CandidateInterval: 30 * time.Minute,
		DecisionPoints:    3,
	}
}

// BenchmarkFig4ClosestNodeLatency regenerates Fig. 4: latency of the server
// selected by Meridian vs CRP Top-1 vs CRP Top-5 for every client.
func BenchmarkFig4ClosestNodeLatency(b *testing.B) {
	sc := benchScenario(b)
	var st experiment.ClosestNodeStats
	for i := 0; i < b.N; i++ {
		outcome, err := sc.RunClosestNode(benchProbeCfg())
		if err != nil {
			b.Fatal(err)
		}
		st = outcome.Stats()
	}
	b.ReportMetric(st.MeanOptimal, "optimal_ms")
	b.ReportMetric(st.MeanCRPTop1, "crp_top1_ms")
	b.ReportMetric(st.MeanCRPTopK, "crp_top5_ms")
	b.ReportMetric(st.MeanMeridian, "meridian_ms")
	b.ReportMetric(100*st.FracTopKNearMeridian, "near_meridian_pct")
}

// BenchmarkFig5RelativeError regenerates Fig. 5: selected-minus-optimal RTT
// at the median and 90th percentile for CRP and Meridian.
func BenchmarkFig5RelativeError(b *testing.B) {
	sc := benchScenario(b)
	var crpErr, merErr []float64
	for i := 0; i < b.N; i++ {
		outcome, err := sc.RunClosestNode(benchProbeCfg())
		if err != nil {
			b.Fatal(err)
		}
		crpErr = outcome.SortedSeries(func(r experiment.ClientResult) float64 { return r.CRPTopK - r.Optimal })
		merErr = outcome.SortedSeries(func(r experiment.ClientResult) float64 { return r.Meridian - r.Optimal })
	}
	b.ReportMetric(crpErr[len(crpErr)/2], "crp_err_p50_ms")
	b.ReportMetric(crpErr[len(crpErr)*9/10], "crp_err_p90_ms")
	b.ReportMetric(merErr[len(merErr)/2], "meridian_err_p50_ms")
	b.ReportMetric(merErr[len(merErr)*9/10], "meridian_err_p90_ms")
}

func benchClusterCfg() experiment.ClusteringConfig {
	return experiment.ClusteringConfig{
		NumNodes:   120,
		Schedule:   experiment.ProbeSchedule{Interval: 10 * time.Minute, Probes: 36},
		SecondPass: true,
	}
}

// BenchmarkTable1ClusteringSummary regenerates Table I: clustering summary
// statistics for CRP at t ∈ {0.01, 0.1, 0.5} vs ASN-based clustering.
func BenchmarkTable1ClusteringSummary(b *testing.B) {
	sc := benchScenario(b)
	var outcome *experiment.ClusteringOutcome
	for i := 0; i < b.N; i++ {
		var err error
		outcome, err = sc.RunClustering(benchClusterCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	focus := outcome.CRPRows[outcome.Focus]
	b.ReportMetric(float64(focus.Summary.NodesClustered), "crp_nodes_clustered")
	b.ReportMetric(float64(focus.Summary.NumClusters), "crp_clusters")
	b.ReportMetric(float64(outcome.ASN.Summary.NodesClustered), "asn_nodes_clustered")
	b.ReportMetric(float64(outcome.ASN.Summary.NumClusters), "asn_clusters")
}

// BenchmarkFig6ClusterCDF regenerates Fig. 6: the intra/inter-cluster
// distance distribution and the good-cluster fraction for CRP at t=0.1.
func BenchmarkFig6ClusterCDF(b *testing.B) {
	sc := benchScenario(b)
	var outcome *experiment.ClusteringOutcome
	for i := 0; i < b.N; i++ {
		var err error
		outcome, err = sc.RunClustering(benchClusterCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	focus := outcome.CRPRows[outcome.Focus]
	intra, inter := focus.IntraCDF()
	if len(intra) > 0 {
		b.ReportMetric(intra[len(intra)/2], "intra_p50_ms")
		b.ReportMetric(inter[len(inter)/2], "inter_p50_ms")
	}
	b.ReportMetric(100*focus.GoodFraction(), "good_pct")
}

// BenchmarkFig7GoodClusters regenerates Fig. 7: good-cluster counts per
// diameter bucket for CRP vs ASN.
func BenchmarkFig7GoodClusters(b *testing.B) {
	sc := benchScenario(b)
	var outcome *experiment.ClusteringOutcome
	for i := 0; i < b.N; i++ {
		var err error
		outcome, err = sc.RunClustering(benchClusterCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	focus := outcome.CRPRows[outcome.Focus]
	b.ReportMetric(float64(focus.GoodBuckets[0]), "crp_good_0_25")
	b.ReportMetric(float64(focus.GoodBuckets[1]), "crp_good_25_75")
	b.ReportMetric(float64(outcome.ASN.GoodBuckets[0]), "asn_good_0_25")
	b.ReportMetric(float64(outcome.ASN.GoodBuckets[1]), "asn_good_25_75")
}

// BenchmarkFig8ProbeInterval regenerates Fig. 8: average recommendation
// rank as the probe interval stretches from 20 to 2000 minutes.
func BenchmarkFig8ProbeInterval(b *testing.B) {
	sc := benchScenario(b)
	intervals := []time.Duration{20 * time.Minute, 100 * time.Minute, 500 * time.Minute, 2000 * time.Minute}
	var series []experiment.RankSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = sc.RunProbeIntervalSweep(intervals, benchSweepCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, iv := range []string{"rank_20min", "rank_100min", "rank_500min", "rank_2000min"} {
		b.ReportMetric(series[i].Mean(), iv)
	}
	b.ReportMetric(float64(series[3].ClientsWithSignal), "clients_2000min")
}

// BenchmarkFig9WindowSize regenerates Fig. 9: average recommendation rank
// for window sizes of all/30/10/5 probes at a 10-minute interval.
func BenchmarkFig9WindowSize(b *testing.B) {
	sc := benchScenario(b)
	var series []experiment.RankSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = sc.RunWindowSweep([]int{0, 30, 10, 5}, 10*time.Minute, benchSweepCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, label := range []string{"rank_all", "rank_30", "rank_10", "rank_5"} {
		b.ReportMetric(series[i].Mean(), label)
	}
}

// BenchmarkAblationSimilarityMetrics compares cosine vs Jaccard vs raw
// overlap for closest-node selection.
func BenchmarkAblationSimilarityMetrics(b *testing.B) {
	sc := benchScenario(b)
	var rows []experiment.SimilarityAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sc.RunSimilarityAblation(benchProbeCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanRank, r.Label+"_rank")
	}
}

// BenchmarkAblationClusterCenters compares SMF center selection vs random
// centers.
func BenchmarkAblationClusterCenters(b *testing.B) {
	sc := benchScenario(b)
	var rows []experiment.CenterAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sc.RunCenterAblation(benchClusterCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].GoodBuckets[0]+rows[0].GoodBuckets[1]), "smf_good")
	b.ReportMetric(float64(rows[1].GoodBuckets[0]+rows[1].GoodBuckets[1]), "random_good")
}

// BenchmarkAblationCoverage sweeps the CDN deployment size.
func BenchmarkAblationCoverage(b *testing.B) {
	var points []experiment.CoveragePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.RunCoverageSweep(
			experiment.ScenarioParams{Seed: 1, NumClients: 80, NumCandidates: 120},
			[]int{120, 480},
			experiment.ClosestNodeConfig{Schedule: experiment.ProbeSchedule{Interval: 10 * time.Minute, Probes: 24}},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].MeanCRPTopK, "sparse_cdn_ms")
	b.ReportMetric(points[1].MeanCRPTopK, "dense_cdn_ms")
}

// BenchmarkAblationBaselines compares CRP, Meridian, Vivaldi and random
// selection on one scenario.
func BenchmarkAblationBaselines(b *testing.B) {
	sc := benchScenario(b)
	var rows []experiment.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sc.RunBaselineComparison(benchProbeCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Label {
		case "optimal":
			b.ReportMetric(r.MeanRTT, "optimal_ms")
		case "meridian":
			b.ReportMetric(r.MeanRTT, "meridian_ms")
		case "vivaldi":
			b.ReportMetric(r.MeanRTT, "vivaldi_ms")
		case "binning":
			b.ReportMetric(r.MeanRTT, "binning_ms")
		case "gnp":
			b.ReportMetric(r.MeanRTT, "gnp_ms")
		case "random":
			b.ReportMetric(r.MeanRTT, "random_ms")
		}
	}
}

// --- Micro-benchmarks for the core data paths ---

func BenchmarkCosineSimilarity(b *testing.B) {
	a := crp.RatioMap{}
	c := crp.RatioMap{}
	for i := 0; i < 12; i++ {
		a[crp.ReplicaID(string(rune('a'+i)))] = float64(i + 1)
		if i%2 == 0 {
			c[crp.ReplicaID(string(rune('a'+i)))] = float64(13 - i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = crp.CosineSimilarity(a, c)
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	tr := crp.NewTracker(crp.WithWindow(20))
	at := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(at.Add(time.Duration(i)*time.Minute), "r1", "r2")
	}
}

func BenchmarkClusterSMF(b *testing.B) {
	var nodes []crp.Node
	for i := 0; i < 177; i++ {
		group := i % 36
		nodes = append(nodes, crp.Node{
			ID: crp.NodeID(string(rune('A'+group)) + string(rune('a'+i/36))),
			Map: crp.RatioMap{
				crp.ReplicaID("g" + string(rune('A'+group)) + "1"): 0.7,
				crp.ReplicaID("g" + string(rune('A'+group)) + "2"): 0.3,
			},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crp.ClusterSMF(nodes, crp.ClusterConfig{Threshold: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// synthNodes builds n nodes whose ratio maps mimic a CRP population:
// groups of nodes share a metro's replica servers with node-specific biases,
// so similarity structure (and the SMF center selection) is realistic.
func synthNodes(n, groups, replicasPerGroup int) []crp.Node {
	nodes := make([]crp.Node, 0, n)
	for i := 0; i < n; i++ {
		g := i % groups
		m := crp.RatioMap{}
		for r := 0; r < replicasPerGroup; r++ {
			id := crp.ReplicaID(fmt.Sprintf("g%03d-r%d", g, r))
			m[id] = float64(1 + (i+r)%5)
		}
		// A little cross-metro bleed, like a client near a metro boundary.
		if i%7 == 0 {
			m[crp.ReplicaID(fmt.Sprintf("g%03d-r0", (g+1)%groups))] = 0.5
		}
		nodes = append(nodes, crp.Node{
			ID:  crp.NodeID(fmt.Sprintf("n%04d", i)),
			Map: m.Normalize(),
		})
	}
	return nodes
}

// BenchmarkClusterSMF1k measures SMF clustering at the paper's full scale
// (1,000 nodes) — the O(N·C) center-assignment hot path.
func BenchmarkClusterSMF1k(b *testing.B) {
	nodes := synthNodes(1000, 40, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crp.ClusterSMF(nodes, crp.ClusterConfig{Threshold: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankBySimilarity1k measures ranking one client against 1,000
// candidate maps — the closest-node query fan-out.
func BenchmarkRankBySimilarity1k(b *testing.B) {
	nodes := synthNodes(1000, 40, 4)
	cands := make(map[crp.NodeID]crp.RatioMap, len(nodes))
	for _, n := range nodes {
		cands[n.ID] = n.Map
	}
	client := nodes[0].Map
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = crp.RankBySimilarity(client, cands)
	}
}

// BenchmarkServiceTopKRepeated measures repeated Service.TopK queries with
// no interleaved observations — the steady-state query load of a deployed
// positioning service, where ratio maps are unchanged between probes.
func BenchmarkServiceTopKRepeated(b *testing.B) {
	s := crp.NewService(crp.WithWindow(10))
	at := time.Now()
	nodes := synthNodes(1000, 40, 4)
	for _, n := range nodes {
		for _, r := range n.Map.Replicas() {
			if err := s.Observe(n.ID, at, r); err != nil {
				b.Fatal(err)
			}
		}
	}
	client := nodes[0].ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK(client, nil, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCosineSimilarityMapPath measures the uncompiled map-based cosine
// (Dot + two Norms), kept as the reference kernel.
func BenchmarkCosineSimilarityMapPath(b *testing.B) {
	a := crp.RatioMap{}
	c := crp.RatioMap{}
	for i := 0; i < 12; i++ {
		a[crp.ReplicaID(string(rune('a'+i)))] = float64(i + 1)
		if i%2 == 0 {
			c[crp.ReplicaID(string(rune('a'+i)))] = float64(13 - i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dot := crp.Dot(a, c)
		if dot != 0 {
			_ = dot / (a.Norm() * c.Norm())
		}
	}
}

func BenchmarkCDNRedirect(b *testing.B) {
	sc := benchScenario(b)
	name := sc.CDN.Names()[0]
	clients := sc.Clients
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sc.CDN.Redirect(name, clients[i%len(clients)], time.Duration(i)*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTTModel(b *testing.B) {
	sc := benchScenario(b)
	hosts := sc.Clients
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Topo.RTTMs(hosts[i%len(hosts)], hosts[(i*7+1)%len(hosts)], time.Duration(i)*time.Second)
	}
}

func BenchmarkDNSPackUnpack(b *testing.B) {
	msg := &dnswire.Message{
		Header: dnswire.Header{ID: 1, Response: true, Authoritative: true},
		Questions: []dnswire.Question{
			{Name: "us.i1.yimg.cdn.sim.", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
		Answers: []dnswire.Record{
			{Name: "us.i1.yimg.cdn.sim.", Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 20,
				Data: &dnswire.CNAMERecord{Target: "g.cdn.sim."}},
			{Name: "g.cdn.sim.", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 20,
				Data: &dnswire.ARecord{Addr: mustAddr("10.1.2.3")}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := msg.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeridianQuery(b *testing.B) {
	sc := benchScenario(b)
	overlay := sc.Meridian
	entry := overlay.Members()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := overlay.ClosestTo(entry, sc.Clients[i%len(sc.Clients)], 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKingEstimate(b *testing.B) {
	sc := benchScenario(b)
	// King over the scenario's topology directly.
	est := mustKing(b, sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := est.EstimateMs(sc.Clients[i%len(sc.Clients)], sc.Clients[(i*3+1)%len(sc.Clients)], 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Helpers.

func mustAddr(s string) netip.Addr {
	return netip.MustParseAddr(s)
}

func mustKing(b *testing.B, sc *experiment.Scenario) *king.Estimator {
	b.Helper()
	est, err := king.New(sc.Topo, sc.Candidates[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	return est
}

// BenchmarkPathRepair runs the §IV-B overlay path-repair study.
func BenchmarkPathRepair(b *testing.B) {
	sc := benchScenario(b)
	var outcome *experiment.RepairOutcome
	for i := 0; i < b.N; i++ {
		var err error
		outcome, err = sc.RunPathRepair(experiment.RepairConfig{
			NumPaths: 100,
			Schedule: experiment.ProbeSchedule{Interval: 10 * time.Minute, Probes: 24},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(outcome.MeanBefore, "before_ms")
	b.ReportMetric(outcome.MeanOracle, "oracle_ms")
	b.ReportMetric(outcome.MeanCRP, "crp_ms")
	b.ReportMetric(outcome.MeanRandom, "random_ms")
}

// BenchmarkBootstrap runs the §VI cold-start study.
func BenchmarkBootstrap(b *testing.B) {
	sc := benchScenario(b)
	var points []experiment.BootstrapPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = sc.RunBootstrap(experiment.BootstrapConfig{ProbeCounts: []int{1, 5, 10, 30}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].MeanRank, "rank_1probe")
	b.ReportMetric(points[2].MeanRank, "rank_10probes")
	b.ReportMetric(points[3].MeanRank, "rank_30probes")
}

// BenchmarkDetourSurvey measures detour discovery over a 60-host population.
func BenchmarkDetourSurvey(b *testing.B) {
	sc := benchScenario(b)
	hosts := sc.Clients[:60]
	maps, err := sc.CollectRatioMaps(hosts, experiment.ProbeSchedule{
		Interval: 10 * time.Minute, Probes: 24,
	})
	if err != nil {
		b.Fatal(err)
	}
	finder, err := detour.NewFinder(
		&detour.TopoEvaluator{Topo: sc.Topo, At: 4 * time.Hour},
		func(r crp.ReplicaID) (netsim.HostID, bool) { return sc.Topo.HostByName(string(r)) },
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		_, frac, err = finder.Survey(hosts, maps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*frac, "win_pct")
}
